//! Bounded path enumeration.
//!
//! In the GPS model a node is selected by a query `q` when one of its paths
//! spells a word of `L(q)`.  The learner and the interactive layer therefore
//! need, for a given node, the set of *words* (label sequences) spelled by
//! paths of bounded length starting at that node, together with witness node
//! sequences.  Paths are walks: nodes and edges may repeat, which is why a
//! length bound (and optionally a result cap) is always applied.

use crate::backend::GraphBackend;
use crate::ids::{LabelId, NodeId};
use std::collections::BTreeSet;

/// A word: the sequence of edge labels spelled by a path.
pub type Word = Vec<LabelId>;

/// A concrete path: the start node, the word it spells and the sequence of
/// nodes visited (always one longer than the word).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct Path {
    /// Node the path starts from.
    pub start: NodeId,
    /// Labels along the path, in order.
    pub word: Word,
    /// Nodes along the path, `nodes[0] == start`, `nodes.len() == word.len() + 1`.
    pub nodes: Vec<NodeId>,
}

impl Path {
    /// The empty path at `start`.
    pub fn empty(start: NodeId) -> Self {
        Self {
            start,
            word: Vec::new(),
            nodes: vec![start],
        }
    }

    /// Length of the path in edges.
    pub fn len(&self) -> usize {
        self.word.len()
    }

    /// Returns `true` for the empty path.
    pub fn is_empty(&self) -> bool {
        self.word.is_empty()
    }

    /// The node the path ends at.
    pub fn end(&self) -> NodeId {
        *self
            .nodes
            .last()
            .expect("path always has at least one node")
    }

    /// Extends the path by one edge.
    pub fn extend(&self, label: LabelId, target: NodeId) -> Self {
        let mut word = self.word.clone();
        word.push(label);
        let mut nodes = self.nodes.clone();
        nodes.push(target);
        Self {
            start: self.start,
            word,
            nodes,
        }
    }

    /// Renders the word using the graph's label names, e.g. `bus·bus·cinema`.
    pub fn render_word<B: GraphBackend>(&self, graph: &B) -> String {
        render_word(graph, &self.word)
    }
}

/// Renders a word using the graph's label names, joining labels with `·`.
pub fn render_word<B: GraphBackend>(graph: &B, word: &[LabelId]) -> String {
    if word.is_empty() {
        return "ε".to_string();
    }
    word.iter()
        .map(|&l| graph.label_name(l).unwrap_or("?").to_string())
        .collect::<Vec<_>>()
        .join("·")
}

/// Configurable enumerator of bounded paths from a node.
#[derive(Debug, Clone)]
pub struct PathEnumerator {
    max_length: usize,
    max_paths: usize,
    include_empty: bool,
}

impl Default for PathEnumerator {
    fn default() -> Self {
        Self {
            max_length: 4,
            max_paths: 100_000,
            include_empty: false,
        }
    }
}

impl PathEnumerator {
    /// Creates an enumerator for paths of at most `max_length` edges.
    pub fn new(max_length: usize) -> Self {
        Self {
            max_length,
            ..Self::default()
        }
    }

    /// Caps the number of enumerated paths (a safety valve against
    /// combinatorial explosion on dense graphs).
    pub fn with_max_paths(mut self, max_paths: usize) -> Self {
        self.max_paths = max_paths;
        self
    }

    /// Whether to include the empty path (and the empty word).  The paper's
    /// queries never select via the empty word, so the default is `false`.
    pub fn with_empty(mut self, include_empty: bool) -> Self {
        self.include_empty = include_empty;
        self
    }

    /// The configured maximum path length.
    pub fn max_length(&self) -> usize {
        self.max_length
    }

    /// Enumerates all paths of length `1..=max_length` (plus the empty path
    /// when configured) starting at `start`, in breadth-first (shortest
    /// first) order, deterministically following edge insertion order.
    pub fn paths_from<B: GraphBackend>(&self, graph: &B, start: NodeId) -> Vec<Path> {
        let mut result = Vec::new();
        if self.include_empty {
            result.push(Path::empty(start));
        }
        if self.max_length == 0 {
            return result;
        }
        let mut frontier = vec![Path::empty(start)];
        for _ in 0..self.max_length {
            let mut next_frontier = Vec::new();
            for path in &frontier {
                for (label, target) in graph.successors(path.end()) {
                    if result.len() >= self.max_paths {
                        return result;
                    }
                    let extended = path.extend(label, target);
                    result.push(extended.clone());
                    next_frontier.push(extended);
                }
            }
            if next_frontier.is_empty() {
                break;
            }
            frontier = next_frontier;
        }
        result
    }

    /// The set of distinct words spelled by paths from `start`.
    pub fn words_from<B: GraphBackend>(&self, graph: &B, start: NodeId) -> BTreeSet<Word> {
        self.paths_from(graph, start)
            .into_iter()
            .map(|p| p.word)
            .collect()
    }

    /// The shortest paths from `start`, grouped: for every distinct word, a
    /// single witness path (the first found in BFS order).
    pub fn witness_paths_from<B: GraphBackend>(&self, graph: &B, start: NodeId) -> Vec<Path> {
        let mut seen = BTreeSet::new();
        let mut witnesses = Vec::new();
        for path in self.paths_from(graph, start) {
            if seen.insert(path.word.clone()) {
                witnesses.push(path);
            }
        }
        witnesses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// The Figure 1 sub-structure around N2 used in Figure 3(c):
    /// N2 -bus-> N1, N2 -bus-> N3, N2 -restaurant-> R1,
    /// N1 -tram-> N4, N1 -bus-> N2*, N3 -bus-> N2*, N4 -cinema-> C1.
    /// (*cycles kept to exercise walk semantics)
    fn n2_fragment() -> (Graph, NodeId) {
        let mut g = Graph::new();
        let n1 = g.add_node("N1");
        let n2 = g.add_node("N2");
        let n3 = g.add_node("N3");
        let n4 = g.add_node("N4");
        let _c1 = g.add_node("C1");
        let _r1 = g.add_node("R1");
        let c1 = g.node_by_name("C1").unwrap();
        let r1 = g.node_by_name("R1").unwrap();
        g.add_edge_by_name(n2, "bus", n1);
        g.add_edge_by_name(n2, "bus", n3);
        g.add_edge_by_name(n2, "restaurant", r1);
        g.add_edge_by_name(n1, "tram", n4);
        g.add_edge_by_name(n1, "bus", n2);
        g.add_edge_by_name(n3, "bus", n2);
        g.add_edge_by_name(n4, "cinema", c1);
        (g, n2)
    }

    #[test]
    fn empty_path_shape() {
        let (_, n2) = n2_fragment();
        let p = Path::empty(n2);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.end(), n2);
    }

    #[test]
    fn extension_appends_label_and_node() {
        let (g, n2) = n2_fragment();
        let n1 = g.node_by_name("N1").unwrap();
        let bus = g.label_id("bus").unwrap();
        let p = Path::empty(n2).extend(bus, n1);
        assert_eq!(p.len(), 1);
        assert_eq!(p.end(), n1);
        assert_eq!(p.word, vec![bus]);
        assert_eq!(p.nodes, vec![n2, n1]);
    }

    #[test]
    fn enumeration_is_shortest_first() {
        let (g, n2) = n2_fragment();
        let paths = PathEnumerator::new(3).paths_from(&g, n2);
        assert!(!paths.is_empty());
        for window in paths.windows(2) {
            assert!(window[0].len() <= window[1].len());
        }
    }

    #[test]
    fn figure3c_contains_bus_bus_cinema_word_length_bound() {
        let (g, n2) = n2_fragment();
        let words = PathEnumerator::new(3).words_from(&g, n2);
        let bus = g.label_id("bus").unwrap();
        let tram = g.label_id("tram").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        let restaurant = g.label_id("restaurant").unwrap();
        // Words of N2 of length <= 3 include bus·tram·cinema (the path of
        // interest in the paper) and restaurant.
        assert!(words.contains(&vec![bus, tram, cinema]));
        assert!(words.contains(&vec![restaurant]));
        // And nothing longer than 3.
        assert!(words.iter().all(|w| w.len() <= 3 && !w.is_empty()));
    }

    #[test]
    fn cycles_produce_repeated_label_walks() {
        let (g, n2) = n2_fragment();
        let bus = g.label_id("bus").unwrap();
        let words = PathEnumerator::new(3).words_from(&g, n2);
        // N2 -bus-> N1 -bus-> N2 -bus-> N3 is a legal walk.
        assert!(words.contains(&vec![bus, bus, bus]));
    }

    #[test]
    fn max_paths_caps_enumeration() {
        let (g, n2) = n2_fragment();
        let paths = PathEnumerator::new(6).with_max_paths(5).paths_from(&g, n2);
        assert_eq!(paths.len(), 5);
    }

    #[test]
    fn include_empty_adds_epsilon_word() {
        let (g, n2) = n2_fragment();
        let words = PathEnumerator::new(1).with_empty(true).words_from(&g, n2);
        assert!(words.contains(&Vec::new()));
        let words_no_eps = PathEnumerator::new(1).words_from(&g, n2);
        assert!(!words_no_eps.contains(&Vec::new()));
    }

    #[test]
    fn witness_paths_have_unique_words() {
        let (g, n2) = n2_fragment();
        let witnesses = PathEnumerator::new(3).witness_paths_from(&g, n2);
        let mut words: Vec<&Word> = witnesses.iter().map(|p| &p.word).collect();
        let before = words.len();
        words.sort();
        words.dedup();
        assert_eq!(before, words.len());
    }

    #[test]
    fn sink_node_has_no_nonempty_paths() {
        let (g, _) = n2_fragment();
        let c1 = g.node_by_name("C1").unwrap();
        let paths = PathEnumerator::new(4).paths_from(&g, c1);
        assert!(paths.is_empty());
    }

    #[test]
    fn render_word_uses_label_names() {
        let (g, n2) = n2_fragment();
        let bus = g.label_id("bus").unwrap();
        let tram = g.label_id("tram").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        assert_eq!(render_word(&g, &[bus, tram, cinema]), "bus·tram·cinema");
        assert_eq!(render_word(&g, &[]), "ε");
        let p = Path::empty(n2).extend(bus, g.node_by_name("N1").unwrap());
        assert_eq!(p.render_word(&g), "bus");
    }

    #[test]
    fn max_length_zero_yields_nothing_or_epsilon() {
        let (g, n2) = n2_fragment();
        assert!(PathEnumerator::new(0).paths_from(&g, n2).is_empty());
        let with_empty = PathEnumerator::new(0).with_empty(true).paths_from(&g, n2);
        assert_eq!(with_empty.len(), 1);
        assert!(with_empty[0].is_empty());
    }
}
