//! Mutable overlay over an immutable snapshot — the write path of a live,
//! epoch-versioned graph.
//!
//! A served graph cannot stop the world to rebuild its [`CsrGraph`] on every
//! edge insertion.  [`DeltaGraph`] layers a small mutable overlay — inserted
//! nodes, inserted edges, and tombstones for deleted edges — over a shared
//! `Arc<CsrGraph>` base, and implements [`GraphBackend`] so the staged state
//! is queryable before it is published.  [`DeltaGraph::compact`] merges the
//! overlay into a fresh snapshot in one pass over the packed arrays — no
//! intermediate adjacency-list graph — producing byte-for-byte the snapshot a
//! from-scratch [`Graph`] → [`CsrGraph`] build of the surviving edges would
//! have produced, stamped with the next [`epoch`](CsrGraph::epoch).
//!
//! The overlay is the unit writers stage: a service accumulates
//! [`UpdateOp`]s into a `DeltaGraph` and publishes the compacted snapshot,
//! while readers pinned to the old epoch keep traversing the unchanged base.
//!
//! ## Identifier semantics
//!
//! Node identifiers are stable across compaction (nodes are never deleted;
//! inserted nodes extend the dense id space).  Edge identifiers are *not*:
//! inside the overlay, base edges keep their base ids and inserted edges are
//! numbered from `base.edge_count()`, but `compact` renumbers the surviving
//! edges densely in (base order, then insertion order) — exactly the ids a
//! from-scratch rebuild assigns.

use crate::backend::GraphBackend;
use crate::csr::{CsrEntry, CsrGraph};
use crate::graph::Edge;
use crate::ids::{EdgeId, LabelId, NodeId};
use crate::labels::LabelInterner;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

/// One staged mutation, with endpoints addressed by display name (the
/// vocabulary of the service update API and the streamed workloads).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateOp {
    /// Insert a node with the given display name.
    AddNode(String),
    /// Insert a `source --label--> target` edge.  Both endpoints must already
    /// exist (insert nodes first); the label is interned on demand.
    AddEdge {
        /// Source node name.
        source: String,
        /// Edge label.
        label: String,
        /// Target node name.
        target: String,
    },
    /// Delete one `source --label--> target` edge (the earliest surviving
    /// occurrence when parallel duplicates exist).
    RemoveEdge {
        /// Source node name.
        source: String,
        /// Edge label.
        label: String,
        /// Target node name.
        target: String,
    },
}

/// Why a staged [`UpdateOp`] could not be applied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UpdateError {
    /// An edge endpoint name resolved to no node.
    UnknownNode(String),
    /// A [`UpdateOp::RemoveEdge`] matched no surviving edge.
    MissingEdge {
        /// Source node name of the removal.
        source: String,
        /// Label name of the removal.
        label: String,
        /// Target node name of the removal.
        target: String,
    },
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::UnknownNode(name) => write!(f, "unknown node `{name}`"),
            UpdateError::MissingEdge {
                source,
                label,
                target,
            } => write!(f, "no edge `{source} -{label}-> {target}` to remove"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// The net effect of an overlay, in the id space of the *merged* graph —
/// what the incremental index and cache maintenance paths consume.
///
/// An edge inserted and then deleted inside the same overlay appears in
/// neither list.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct GraphDelta {
    /// Epoch of the base snapshot the overlay was staged against.
    pub base_epoch: u64,
    /// Number of inserted nodes.
    pub added_nodes: usize,
    /// Surviving inserted edges, in insertion order.
    pub added_edges: Vec<Edge>,
    /// Deleted base edges, in base edge-id order.
    pub removed_edges: Vec<Edge>,
}

impl GraphDelta {
    /// Returns `true` when the overlay changed nothing.
    pub fn is_empty(&self) -> bool {
        self.added_nodes == 0 && self.added_edges.is_empty() && self.removed_edges.is_empty()
    }

    /// The labels whose adjacency partitions the delta touches.
    pub fn touched_labels(&self) -> BTreeSet<LabelId> {
        self.added_edges
            .iter()
            .chain(&self.removed_edges)
            .map(|e| e.label)
            .collect()
    }

    /// The distinct source nodes of the changed edges, ascending — the seed
    /// set for bounded-reachability cache maintenance (only nodes reaching a
    /// changed edge's source within the bound can change their word sets).
    pub fn changed_sources(&self) -> Vec<NodeId> {
        let set: BTreeSet<NodeId> = self
            .added_edges
            .iter()
            .chain(&self.removed_edges)
            .map(|e| e.source)
            .collect();
        set.into_iter().collect()
    }
}

/// A mutable overlay (node/edge insertions, edge tombstones) over a shared
/// immutable [`CsrGraph`] base.  See the [module docs](self).
#[derive(Debug, Clone)]
pub struct DeltaGraph {
    base: Arc<CsrGraph>,
    labels: LabelInterner,
    added_names: Vec<String>,
    name_index: BTreeMap<String, NodeId>,
    added_edges: Vec<Edge>,
    /// `false` for overlay edges deleted before publication.
    added_alive: Vec<bool>,
    /// Overlay out-adjacency: indices into `added_edges`, per source node.
    added_out: BTreeMap<NodeId, Vec<usize>>,
    /// Overlay in-adjacency: indices into `added_edges`, per target node.
    added_in: BTreeMap<NodeId, Vec<usize>>,
    /// Deleted base edges, keyed by their base edge id.
    tombstones: BTreeMap<EdgeId, Edge>,
}

impl DeltaGraph {
    /// Starts an empty overlay over `base`.
    pub fn new(base: Arc<CsrGraph>) -> Self {
        Self {
            labels: base.labels().clone(),
            name_index: base.name_index().clone(),
            base,
            added_names: Vec::new(),
            added_edges: Vec::new(),
            added_alive: Vec::new(),
            added_out: BTreeMap::new(),
            added_in: BTreeMap::new(),
            tombstones: BTreeMap::new(),
        }
    }

    /// The shared base snapshot.
    pub fn base(&self) -> &Arc<CsrGraph> {
        &self.base
    }

    /// Returns `true` when nothing has been staged yet.
    pub fn is_clean(&self) -> bool {
        self.added_names.is_empty() && self.added_edges.is_empty() && self.tombstones.is_empty()
    }

    /// Number of staged node insertions.
    pub fn added_node_count(&self) -> usize {
        self.added_names.len()
    }

    /// Number of surviving staged edge insertions.
    pub fn added_edge_count(&self) -> usize {
        self.added_alive.iter().filter(|&&alive| alive).count()
    }

    /// Number of staged base-edge deletions.
    pub fn removed_edge_count(&self) -> usize {
        self.tombstones.len()
    }

    /// Interns (or looks up) a label string in the overlay's alphabet.
    pub fn label(&mut self, name: &str) -> LabelId {
        self.labels.intern(name)
    }

    /// Inserts a node and returns its identifier (dense, continuing the
    /// base's id space).  Mirrors [`Graph::add_node`]: duplicate names are
    /// permitted, name lookup resolves to the first bearer.
    pub fn add_node(&mut self, name: impl Into<String>) -> NodeId {
        let id = NodeId::from(self.base.node_count() + self.added_names.len());
        let name = name.into();
        self.name_index.entry(name.clone()).or_insert(id);
        self.added_names.push(name);
        id
    }

    /// Inserts a `source --label--> target` edge and returns its overlay
    /// edge id (renumbered by [`compact`](Self::compact)).
    ///
    /// # Panics
    /// Panics when either endpoint does not belong to this overlay, mirroring
    /// [`Graph::add_edge`].
    pub fn add_edge(&mut self, source: NodeId, label: LabelId, target: NodeId) -> EdgeId {
        assert!(self.contains_node(source), "unknown source node {source}");
        assert!(self.contains_node(target), "unknown target node {target}");
        let index = self.added_edges.len();
        self.added_edges.push(Edge::new(source, label, target));
        self.added_alive.push(true);
        self.added_out.entry(source).or_default().push(index);
        self.added_in.entry(target).or_default().push(index);
        EdgeId::from(self.base.edge_count() + index)
    }

    /// Deletes one `source --label--> target` edge: the earliest surviving
    /// base occurrence, else the earliest surviving overlay occurrence.
    /// Returns `false` when no such edge survives.
    pub fn remove_edge(&mut self, source: NodeId, label: LabelId, target: NodeId) -> bool {
        if source.index() < self.base.node_count() {
            let entries = self.base.out(source);
            let ids = self.base.out_ids(source);
            for (entry, &id) in entries.iter().zip(ids) {
                if entry.label == label
                    && entry.node == target
                    && !self.tombstones.contains_key(&id)
                {
                    self.tombstones.insert(id, Edge::new(source, label, target));
                    return true;
                }
            }
        }
        if let Some(indices) = self.added_out.get(&source) {
            for &i in indices {
                let edge = self.added_edges[i];
                if self.added_alive[i] && edge.label == label && edge.target == target {
                    self.added_alive[i] = false;
                    return true;
                }
            }
        }
        false
    }

    /// Applies one name-addressed [`UpdateOp`].
    pub fn apply(&mut self, op: &UpdateOp) -> Result<(), UpdateError> {
        match op {
            UpdateOp::AddNode(name) => {
                self.add_node(name.as_str());
                Ok(())
            }
            UpdateOp::AddEdge {
                source,
                label,
                target,
            } => {
                let source = self.resolve(source)?;
                let target = self.resolve(target)?;
                let label = self.labels.intern(label);
                self.add_edge(source, label, target);
                Ok(())
            }
            UpdateOp::RemoveEdge {
                source,
                label,
                target,
            } => {
                let source_id = self.resolve(source)?;
                let target_id = self.resolve(target)?;
                let removed = self
                    .labels
                    .get(label)
                    .is_some_and(|l| self.remove_edge(source_id, l, target_id));
                if removed {
                    Ok(())
                } else {
                    Err(UpdateError::MissingEdge {
                        source: source.clone(),
                        label: label.clone(),
                        target: target.clone(),
                    })
                }
            }
        }
    }

    /// Applies a batch of ops, stopping at the first failure.
    pub fn apply_all(&mut self, ops: &[UpdateOp]) -> Result<(), UpdateError> {
        ops.iter().try_for_each(|op| self.apply(op))
    }

    fn resolve(&self, name: &str) -> Result<NodeId, UpdateError> {
        self.name_index
            .get(name)
            .copied()
            .ok_or_else(|| UpdateError::UnknownNode(name.to_string()))
    }

    /// The net effect of the overlay (see [`GraphDelta`]).
    pub fn delta(&self) -> GraphDelta {
        GraphDelta {
            base_epoch: self.base.epoch(),
            added_nodes: self.added_names.len(),
            added_edges: self
                .added_edges
                .iter()
                .zip(&self.added_alive)
                .filter(|&(_, &alive)| alive)
                .map(|(&edge, _)| edge)
                .collect(),
            removed_edges: self.tombstones.values().copied().collect(),
        }
    }

    /// Merges the overlay into a fresh snapshot stamped `base.epoch() + 1`.
    ///
    /// One pass over the packed arrays per direction; the result is
    /// byte-identical to snapshotting a from-scratch [`Graph`] holding the
    /// surviving edges (base edges in base order, then overlay insertions) —
    /// `tests/mvcc_conformance.rs` proves this over random update sequences.
    pub fn compact(&self) -> CsrGraph {
        let base = self.base.as_ref();
        let base_n = base.node_count();
        let n = self.node_count();

        // Dense renumbering: surviving base edges in base-id order, then
        // surviving overlay edges in insertion order.
        let mut next = 0u32;
        let mut base_id_map = vec![u32::MAX; base.edge_count()];
        for (old, slot) in base_id_map.iter_mut().enumerate() {
            if !self.tombstones.contains_key(&EdgeId::from(old)) {
                *slot = next;
                next += 1;
            }
        }
        let mut overlay_id_map = vec![u32::MAX; self.added_edges.len()];
        for (i, slot) in overlay_id_map.iter_mut().enumerate() {
            if self.added_alive[i] {
                *slot = next;
                next += 1;
            }
        }
        let total_edges = next as usize;

        let mut node_names = Vec::with_capacity(n);
        node_names.extend(base.nodes().map(|node| base.node_name(node).to_string()));
        node_names.extend(self.added_names.iter().cloned());

        let mut fwd_offsets = Vec::with_capacity(n + 1);
        let mut fwd_entries = Vec::with_capacity(total_edges);
        let mut fwd_edge_ids = Vec::with_capacity(total_edges);
        let mut rev_offsets = Vec::with_capacity(n + 1);
        let mut rev_entries = Vec::with_capacity(total_edges);
        let mut rev_edge_ids = Vec::with_capacity(total_edges);
        fwd_offsets.push(0);
        rev_offsets.push(0);
        for index in 0..n {
            let node = NodeId::from(index);
            if index < base_n {
                for (entry, &id) in base.out(node).iter().zip(base.out_ids(node)) {
                    let new = base_id_map[id.index()];
                    if new != u32::MAX {
                        fwd_entries.push(*entry);
                        fwd_edge_ids.push(EdgeId::new(new));
                    }
                }
                for (entry, &id) in base.inc(node).iter().zip(base.inc_ids(node)) {
                    let new = base_id_map[id.index()];
                    if new != u32::MAX {
                        rev_entries.push(*entry);
                        rev_edge_ids.push(EdgeId::new(new));
                    }
                }
            }
            if let Some(indices) = self.added_out.get(&node) {
                for &i in indices {
                    if self.added_alive[i] {
                        let edge = self.added_edges[i];
                        fwd_entries.push(CsrEntry {
                            label: edge.label,
                            node: edge.target,
                        });
                        fwd_edge_ids.push(EdgeId::new(overlay_id_map[i]));
                    }
                }
            }
            if let Some(indices) = self.added_in.get(&node) {
                for &i in indices {
                    if self.added_alive[i] {
                        let edge = self.added_edges[i];
                        rev_entries.push(CsrEntry {
                            label: edge.label,
                            node: edge.source,
                        });
                        rev_edge_ids.push(EdgeId::new(overlay_id_map[i]));
                    }
                }
            }
            fwd_offsets.push(fwd_entries.len() as u32);
            rev_offsets.push(rev_entries.len() as u32);
        }

        CsrGraph::from_parts(
            node_names,
            self.name_index.clone(),
            self.labels.clone(),
            fwd_offsets,
            fwd_entries,
            fwd_edge_ids,
            rev_offsets,
            rev_entries,
            rev_edge_ids,
            base.epoch() + 1,
        )
    }

    fn base_out_parts(&self, node: NodeId) -> (&[CsrEntry], &[EdgeId]) {
        if node.index() < self.base.node_count() {
            (self.base.out(node), self.base.out_ids(node))
        } else {
            (&[], &[])
        }
    }

    fn base_in_parts(&self, node: NodeId) -> (&[CsrEntry], &[EdgeId]) {
        if node.index() < self.base.node_count() {
            (self.base.inc(node), self.base.inc_ids(node))
        } else {
            (&[], &[])
        }
    }

    fn overlay_indices(
        map: &BTreeMap<NodeId, Vec<usize>>,
        node: NodeId,
    ) -> std::slice::Iter<'_, usize> {
        map.get(&node).map(|v| v.iter()).unwrap_or([].iter())
    }
}

/// Iterator over the surviving `(label, neighbor)` pairs of one node of a
/// [`DeltaGraph`]: base entries with tombstones skipped, then overlay
/// insertions.
pub struct DeltaNeighbors<'a> {
    base_entries: std::slice::Iter<'a, CsrEntry>,
    base_ids: std::slice::Iter<'a, EdgeId>,
    tombstones: &'a BTreeMap<EdgeId, Edge>,
    overlay: std::slice::Iter<'a, usize>,
    edges: &'a [Edge],
    alive: &'a [bool],
    reverse: bool,
}

impl<'a> Iterator for DeltaNeighbors<'a> {
    type Item = (LabelId, NodeId);

    fn next(&mut self) -> Option<(LabelId, NodeId)> {
        for entry in self.base_entries.by_ref() {
            let id = self.base_ids.next().expect("ids aligned with entries");
            if !self.tombstones.contains_key(id) {
                return Some((entry.label, entry.node));
            }
        }
        for &i in self.overlay.by_ref() {
            if self.alive[i] {
                let edge = self.edges[i];
                let neighbor = if self.reverse {
                    edge.source
                } else {
                    edge.target
                };
                return Some((edge.label, neighbor));
            }
        }
        None
    }
}

/// Iterator over the surviving `(edge id, edge)` pairs incident to one node
/// of a [`DeltaGraph`] (overlay edges numbered from `base.edge_count()`).
pub struct DeltaIncidentEdges<'a> {
    base_entries: std::slice::Iter<'a, CsrEntry>,
    base_ids: std::slice::Iter<'a, EdgeId>,
    tombstones: &'a BTreeMap<EdgeId, Edge>,
    overlay: std::slice::Iter<'a, usize>,
    edges: &'a [Edge],
    alive: &'a [bool],
    base_edge_count: usize,
    pivot: NodeId,
    reverse: bool,
}

impl<'a> Iterator for DeltaIncidentEdges<'a> {
    type Item = (EdgeId, Edge);

    fn next(&mut self) -> Option<(EdgeId, Edge)> {
        for entry in self.base_entries.by_ref() {
            let id = self.base_ids.next().expect("ids aligned with entries");
            if !self.tombstones.contains_key(id) {
                let edge = if self.reverse {
                    Edge::new(entry.node, entry.label, self.pivot)
                } else {
                    Edge::new(self.pivot, entry.label, entry.node)
                };
                return Some((*id, edge));
            }
        }
        for &i in self.overlay.by_ref() {
            if self.alive[i] {
                return Some((EdgeId::from(self.base_edge_count + i), self.edges[i]));
            }
        }
        None
    }
}

impl GraphBackend for DeltaGraph {
    type Neighbors<'a> = DeltaNeighbors<'a>;
    type IncidentEdges<'a> = DeltaIncidentEdges<'a>;

    fn node_count(&self) -> usize {
        self.base.node_count() + self.added_names.len()
    }

    fn edge_count(&self) -> usize {
        self.base.edge_count() - self.tombstones.len() + self.added_edge_count()
    }

    fn labels(&self) -> &LabelInterner {
        &self.labels
    }

    fn node_name(&self, node: NodeId) -> &str {
        let base_n = self.base.node_count();
        if node.index() < base_n {
            self.base.node_name(node)
        } else {
            &self.added_names[node.index() - base_n]
        }
    }

    fn node_by_name(&self, name: &str) -> Option<NodeId> {
        self.name_index.get(name).copied()
    }

    fn successors(&self, node: NodeId) -> DeltaNeighbors<'_> {
        let (entries, ids) = self.base_out_parts(node);
        DeltaNeighbors {
            base_entries: entries.iter(),
            base_ids: ids.iter(),
            tombstones: &self.tombstones,
            overlay: Self::overlay_indices(&self.added_out, node),
            edges: &self.added_edges,
            alive: &self.added_alive,
            reverse: false,
        }
    }

    fn predecessors(&self, node: NodeId) -> DeltaNeighbors<'_> {
        let (entries, ids) = self.base_in_parts(node);
        DeltaNeighbors {
            base_entries: entries.iter(),
            base_ids: ids.iter(),
            tombstones: &self.tombstones,
            overlay: Self::overlay_indices(&self.added_in, node),
            edges: &self.added_edges,
            alive: &self.added_alive,
            reverse: true,
        }
    }

    fn out_edges(&self, node: NodeId) -> DeltaIncidentEdges<'_> {
        let (entries, ids) = self.base_out_parts(node);
        DeltaIncidentEdges {
            base_entries: entries.iter(),
            base_ids: ids.iter(),
            tombstones: &self.tombstones,
            overlay: Self::overlay_indices(&self.added_out, node),
            edges: &self.added_edges,
            alive: &self.added_alive,
            base_edge_count: self.base.edge_count(),
            pivot: node,
            reverse: false,
        }
    }

    fn in_edges(&self, node: NodeId) -> DeltaIncidentEdges<'_> {
        let (entries, ids) = self.base_in_parts(node);
        DeltaIncidentEdges {
            base_entries: entries.iter(),
            base_ids: ids.iter(),
            tombstones: &self.tombstones,
            overlay: Self::overlay_indices(&self.added_in, node),
            edges: &self.added_edges,
            alive: &self.added_alive,
            base_edge_count: self.base.edge_count(),
            pivot: node,
            reverse: true,
        }
    }

    fn out_degree(&self, node: NodeId) -> usize {
        self.successors(node).count()
    }

    fn in_degree(&self, node: NodeId) -> usize {
        self.predecessors(node).count()
    }

    /// The epoch of the *base* snapshot: the overlay is unpublished state, so
    /// it identifies with the version it was staged against.
    fn epoch(&self) -> u64 {
        self.base.epoch()
    }
}

// `Graph` is referenced by the docs above.
#[allow(unused_imports)]
use crate::graph::Graph;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    /// a -x-> b -y-> c ; a -x-> c
    fn base() -> Arc<CsrGraph> {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        let c = g.add_node("c");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(b, "y", c);
        g.add_edge_by_name(a, "x", c);
        Arc::new(CsrGraph::from_graph(&g))
    }

    fn names(delta: &DeltaGraph, node: &str) -> NodeId {
        delta.node_by_name(node).unwrap()
    }

    #[test]
    fn overlay_reads_combine_base_and_staged_state() {
        let mut delta = DeltaGraph::new(base());
        assert!(delta.is_clean());
        let a = names(&delta, "a");
        let c = names(&delta, "c");
        let d = delta.add_node("d");
        let z = delta.label("z");
        delta.add_edge(c, z, d);
        let x = delta.labels().get("x").unwrap();
        assert!(delta.remove_edge(a, x, c));
        assert!(!delta.remove_edge(a, x, c), "already tombstoned");

        assert_eq!(delta.node_count(), 4);
        assert_eq!(delta.edge_count(), 3);
        assert_eq!(delta.node_name(d), "d");
        let out_a: Vec<_> = delta.successors(a).collect();
        assert_eq!(out_a, vec![(x, names(&delta, "b"))], "a-x->c tombstoned");
        let out_c: Vec<_> = delta.successors(c).collect();
        assert_eq!(out_c, vec![(z, d)]);
        let in_d: Vec<_> = delta.predecessors(d).collect();
        assert_eq!(in_d, vec![(z, c)]);
        assert_eq!(delta.out_degree(a), 1);
        assert_eq!(delta.in_degree(c), 1, "b-y->c survives, a-x->c removed");
        assert!(delta.has_edge(c, z, d));
        assert!(!delta.has_edge(a, x, c));
    }

    #[test]
    fn overlay_edge_ids_continue_the_base_space() {
        let mut delta = DeltaGraph::new(base());
        let a = names(&delta, "a");
        let b = names(&delta, "b");
        let x = delta.label("x");
        let id = delta.add_edge(b, x, a);
        assert_eq!(id, EdgeId::from(3usize));
        let incident: Vec<EdgeId> = delta.out_edges(b).map(|(id, _)| id).collect();
        assert_eq!(incident, vec![EdgeId::from(1usize), EdgeId::from(3usize)]);
    }

    #[test]
    fn compact_matches_a_from_scratch_rebuild() {
        let mut delta = DeltaGraph::new(base());
        let a = names(&delta, "a");
        let b = names(&delta, "b");
        let c = names(&delta, "c");
        let d = delta.add_node("d");
        let z = delta.label("z");
        let x = delta.labels().get("x").unwrap();
        delta.add_edge(c, z, d);
        delta.add_edge(d, x, a);
        assert!(delta.remove_edge(a, x, b));
        let compacted = delta.compact();

        // From-scratch: surviving base edges in base order, then overlay.
        let mut g = Graph::new();
        for name in ["x", "y", "z"] {
            g.label(name);
        }
        let ga = g.add_node("a");
        let gb = g.add_node("b");
        let gc = g.add_node("c");
        let gd = g.add_node("d");
        g.add_edge_by_name(gb, "y", gc);
        g.add_edge_by_name(ga, "x", gc);
        g.add_edge_by_name(gc, "z", gd);
        g.add_edge_by_name(gd, "x", ga);
        let expected = CsrGraph::from_graph(&g);

        assert_eq!(compacted.node_count(), expected.node_count());
        assert_eq!(compacted.edge_count(), expected.edge_count());
        assert_eq!(compacted.labels(), expected.labels());
        for node in expected.nodes() {
            assert_eq!(compacted.out(node), expected.out(node), "{node}");
            assert_eq!(compacted.inc(node), expected.inc(node), "{node}");
            let got: Vec<_> = GraphBackend::out_edges(&compacted, node).collect();
            let want: Vec<_> = GraphBackend::out_edges(&expected, node).collect();
            assert_eq!(got, want, "{node}");
        }
        assert_eq!(compacted.node_name(d), "d");
        assert_eq!(compacted.epoch(), 1, "base was epoch 0");
    }

    #[test]
    fn epochs_advance_across_chained_compactions() {
        let delta = DeltaGraph::new(base());
        let once = Arc::new(delta.compact());
        assert_eq!(once.epoch(), 1);
        let twice = DeltaGraph::new(once).compact();
        assert_eq!(twice.epoch(), 2);
    }

    #[test]
    fn add_then_remove_inside_one_overlay_nets_out() {
        let mut delta = DeltaGraph::new(base());
        let a = names(&delta, "a");
        let b = names(&delta, "b");
        let w = delta.label("w");
        delta.add_edge(a, w, b);
        assert!(delta.remove_edge(a, w, b));
        let summary = delta.delta();
        assert!(summary.added_edges.is_empty());
        assert!(summary.removed_edges.is_empty());
        assert_eq!(delta.edge_count(), 3);
        let compacted = delta.compact();
        assert_eq!(compacted.edge_count(), 3);
    }

    #[test]
    fn apply_resolves_names_and_surfaces_errors() {
        let mut delta = DeltaGraph::new(base());
        delta
            .apply_all(&[
                UpdateOp::AddNode("d".into()),
                UpdateOp::AddEdge {
                    source: "c".into(),
                    label: "z".into(),
                    target: "d".into(),
                },
                UpdateOp::RemoveEdge {
                    source: "a".into(),
                    label: "x".into(),
                    target: "b".into(),
                },
            ])
            .unwrap();
        assert_eq!(delta.added_node_count(), 1);
        assert_eq!(delta.added_edge_count(), 1);
        assert_eq!(delta.removed_edge_count(), 1);

        let unknown = delta.apply(&UpdateOp::AddEdge {
            source: "ghost".into(),
            label: "x".into(),
            target: "a".into(),
        });
        assert_eq!(unknown, Err(UpdateError::UnknownNode("ghost".into())));
        let missing = delta.apply(&UpdateOp::RemoveEdge {
            source: "a".into(),
            label: "nope".into(),
            target: "b".into(),
        });
        assert!(matches!(missing, Err(UpdateError::MissingEdge { .. })));
        assert!(missing.unwrap_err().to_string().contains("nope"));
    }

    #[test]
    fn delta_summary_reports_the_net_effect() {
        let mut delta = DeltaGraph::new(base());
        let a = names(&delta, "a");
        let b = names(&delta, "b");
        let x = delta.label("x");
        let y = delta.label("y");
        delta.add_edge(b, y, a);
        delta.remove_edge(a, x, b);
        let summary = delta.delta();
        assert_eq!(summary.base_epoch, 0);
        assert_eq!(summary.added_edges, vec![Edge::new(b, y, a)]);
        assert_eq!(summary.removed_edges, vec![Edge::new(a, x, b)]);
        assert_eq!(
            summary.touched_labels().into_iter().collect::<Vec<_>>(),
            vec![x, y]
        );
        assert_eq!(summary.changed_sources(), vec![a, b]);
        assert!(!summary.is_empty());
        assert!(DeltaGraph::new(base()).delta().is_empty());
    }

    #[test]
    fn parallel_duplicate_removal_takes_one_occurrence() {
        let mut g = Graph::new();
        let a = g.add_node("a");
        let b = g.add_node("b");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(a, "x", b);
        let mut delta = DeltaGraph::new(Arc::new(CsrGraph::from_graph(&g)));
        let x = delta.labels().get("x").unwrap();
        assert!(delta.remove_edge(a, x, b));
        assert_eq!(delta.edge_count(), 1);
        assert!(delta.remove_edge(a, x, b));
        assert_eq!(delta.edge_count(), 0);
        assert!(!delta.remove_edge(a, x, b));
    }
}
