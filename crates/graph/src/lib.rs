//! # gps-graph — edge-labeled directed graph substrate
//!
//! This crate provides the graph database model used by GPS ("Graph Path
//! query Specification", Bonifati, Ciucanu, Lemay — EDBT 2015): a directed
//! multigraph whose edges carry labels drawn from a finite alphabet and whose
//! nodes carry human-readable names.
//!
//! The crate is deliberately self-contained — it knows nothing about queries,
//! learning or interaction — and exposes exactly the primitives the rest of
//! the system needs:
//!
//! * [`backend::GraphBackend`] — the storage-agnostic read interface all
//!   query layers are generic over (see its module docs for the design);
//! * [`Graph`] — the mutable adjacency-list store with forward and reverse
//!   adjacency, label interning and node naming;
//! * [`csr::CsrGraph`] — an immutable, cache-friendly snapshot; a first-class
//!   backend for the traversal-heavy evaluation and learning code, stamped
//!   with a version [`epoch`](csr::CsrGraph::epoch);
//! * [`delta::DeltaGraph`] — a mutable overlay (insertions + tombstoned
//!   deletions) over a shared snapshot; [`compact`](delta::DeltaGraph::compact)
//!   publishes the next epoch;
//! * [`traversal`] — BFS/DFS, distances and reachability, over any backend;
//! * [`neighborhood`] — the *k*-neighborhood subgraphs the user is shown
//!   (Figure 3(a)/(b) of the paper), including the frontier markers ("…")
//!   and the delta highlighting used when zooming out;
//! * [`paths`] — bounded-length path enumeration from a node, producing both
//!   label words and node sequences;
//! * [`prefix_tree`] — the prefix tree of a node's path words (Figure 3(c));
//! * [`io`] — edge-list and JSON (de)serialization;
//! * [`stats`] — degree and label distribution summaries.
//!
//! ## Example
//!
//! ```
//! use gps_graph::{CsrGraph, Graph, GraphBackend};
//!
//! let mut g = Graph::new();
//! let n1 = g.add_node("N1");
//! let n4 = g.add_node("N4");
//! let c1 = g.add_node("C1");
//! let tram = g.label("tram");
//! let cinema = g.label("cinema");
//! g.add_edge(n1, tram, n4);
//! g.add_edge(n4, cinema, c1);
//!
//! assert_eq!(g.node_count(), 3);
//! assert_eq!(g.edge_count(), 2);
//! assert_eq!(g.out_degree(n1), 1);
//!
//! // Snapshot to the immutable CSR backend: both stores satisfy
//! // `GraphBackend`, so every query layer runs on either.
//! let csr = CsrGraph::from_graph(&g);
//! fn describe<B: GraphBackend>(b: &B) -> (usize, usize) {
//!     (b.node_count(), b.edge_count())
//! }
//! assert_eq!(describe(&g), describe(&csr));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod backend;
pub mod csr;
pub mod delta;
pub mod dot;
pub mod graph;
pub mod ids;
pub mod io;
pub mod labels;
pub mod neighborhood;
pub mod paths;
pub mod prefix_tree;
pub mod stats;
pub mod traversal;

pub use backend::GraphBackend;
pub use csr::{CsrEntry, CsrGraph};
pub use delta::{DeltaGraph, GraphDelta, UpdateError, UpdateOp};
pub use graph::{Edge, Graph};
pub use ids::{EdgeId, LabelId, NodeId};
pub use labels::LabelInterner;
pub use neighborhood::{Neighborhood, NeighborhoodDelta};
pub use paths::{Path, PathEnumerator, Word};
pub use prefix_tree::{PrefixNodeId, PrefixTree};
pub use stats::{GraphStats, LabelStat, LabelStats};
