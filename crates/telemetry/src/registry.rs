//! The sharable [`MetricsRegistry`]: namespaced registration of counters,
//! gauges and histograms, the audit [`EventLog`], and coherent snapshots.
//!
//! One registry is threaded through the whole engine behind an
//! `Arc<MetricsRegistry>` (see `GpsBuilder::metrics` in `gps-core`).
//! Registration is idempotent per name: asking twice for
//! `gps_rpq_cache_hits_total` returns handles over the same cell, so layers
//! that are rebuilt per epoch (caches, evaluators) keep extending the same
//! series instead of resetting it.

use crate::event::{Event, EventLog};
use crate::export;
use crate::metric::{Counter, Gauge, Histogram, HistogramCore, HistogramSnapshot};
use std::collections::BTreeMap;
use std::sync::atomic::AtomicU64;
use std::sync::{Arc, Mutex};

/// Default audit-event retention of an enabled registry.
const DEFAULT_EVENT_CAPACITY: usize = 1024;

#[derive(Debug, Default)]
struct MetricsMap {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<HistogramCore>>,
}

#[derive(Debug)]
struct Inner {
    metrics: Mutex<MetricsMap>,
    events: EventLog,
}

/// The metrics and audit-event registry.
///
/// [`MetricsRegistry::disabled`] (the engine default) vends no-op handles —
/// every recording costs ~one branch and snapshots are empty.
/// [`MetricsRegistry::enabled`] vends live handles deduplicated by full
/// metric name.  Registration takes a short mutex; recording is lock-free —
/// callers are expected to register once at construction and keep the
/// handles (the pre-bound `*Metrics` structs in each crate).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Option<Inner>,
}

impl MetricsRegistry {
    /// The no-op registry: every handle is disabled, every export empty.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A live registry with the default event retention.
    pub fn enabled() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A live registry retaining the most recent `event_capacity` audit
    /// events.
    pub fn with_event_capacity(event_capacity: usize) -> Self {
        Self {
            inner: Some(Inner {
                metrics: Mutex::new(MetricsMap::default()),
                events: EventLog::new(event_capacity),
            }),
        }
    }

    /// Whether handles vended by this registry record anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// A namespaced view: every registration through the scope is prefixed
    /// with `prefix` + `_`.
    pub fn scope(registry: &Arc<Self>, prefix: &str) -> MetricsScope {
        assert!(valid_name(prefix), "invalid metric namespace {prefix:?}");
        MetricsScope {
            registry: Arc::clone(registry),
            prefix: prefix.to_string(),
        }
    }

    /// The counter registered under `name` (created on first use; disabled
    /// handle when the registry is disabled).
    pub fn counter(&self, name: &str) -> Counter {
        match &self.inner {
            None => Counter::disabled(),
            Some(inner) => {
                let mut map = inner.metrics.lock().expect("metrics map poisoned");
                check_name(name, &map, Kind::Counter);
                let cell = map
                    .counters
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)));
                Counter::from_cell(Arc::clone(cell))
            }
        }
    }

    /// The gauge registered under `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        match &self.inner {
            None => Gauge::disabled(),
            Some(inner) => {
                let mut map = inner.metrics.lock().expect("metrics map poisoned");
                check_name(name, &map, Kind::Gauge);
                let cell = map
                    .gauges
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(AtomicU64::new(0)));
                Gauge::from_cell(Arc::clone(cell))
            }
        }
    }

    /// The histogram registered under `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        match &self.inner {
            None => Histogram::disabled(),
            Some(inner) => {
                let mut map = inner.metrics.lock().expect("metrics map poisoned");
                check_name(name, &map, Kind::Histogram);
                let cell = map
                    .histograms
                    .entry(name.to_string())
                    .or_insert_with(|| Arc::new(HistogramCore::new()));
                Histogram::from_cell(Arc::clone(cell))
            }
        }
    }

    /// Records an audit event; `fields` is only invoked when the registry is
    /// enabled, so a disabled registry never pays for formatting.
    pub fn event_with<F>(&self, kind: &str, fields: F)
    where
        F: FnOnce() -> Vec<(String, String)>,
    {
        if let Some(inner) = &self.inner {
            inner.events.record(kind, fields());
        }
    }

    /// The retained audit events, oldest first (empty when disabled).
    pub fn events(&self) -> Vec<Event> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |inner| inner.events.snapshot())
    }

    /// A coherent point-in-time snapshot of every metric and the event log.
    pub fn snapshot(&self) -> MetricsSnapshot {
        match &self.inner {
            None => MetricsSnapshot::default(),
            Some(inner) => {
                let map = inner.metrics.lock().expect("metrics map poisoned");
                MetricsSnapshot {
                    counters: map
                        .counters
                        .iter()
                        .map(|(name, cell)| {
                            (
                                name.clone(),
                                cell.load(std::sync::atomic::Ordering::Relaxed),
                            )
                        })
                        .collect(),
                    gauges: map
                        .gauges
                        .iter()
                        .map(|(name, cell)| {
                            (
                                name.clone(),
                                cell.load(std::sync::atomic::Ordering::Relaxed),
                            )
                        })
                        .collect(),
                    histograms: map
                        .histograms
                        .iter()
                        .map(|(name, cell)| (name.clone(), cell.snapshot()))
                        .collect(),
                    events: inner.events.snapshot(),
                }
            }
        }
    }

    /// [`MetricsSnapshot::to_json`] of the current state.
    pub fn to_json(&self) -> String {
        self.snapshot().to_json()
    }

    /// [`MetricsSnapshot::to_prometheus_text`] of the current state.
    pub fn to_prometheus_text(&self) -> String {
        self.snapshot().to_prometheus_text()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

/// `[a-zA-Z_][a-zA-Z0-9_]*` — the (label-free) Prometheus metric name
/// grammar, minus the colon we never use.
fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()))
}

fn check_name(name: &str, map: &MetricsMap, kind: Kind) {
    assert!(valid_name(name), "invalid metric name {name:?}");
    let clash = match kind {
        Kind::Counter => map.gauges.contains_key(name) || map.histograms.contains_key(name),
        Kind::Gauge => map.counters.contains_key(name) || map.histograms.contains_key(name),
        Kind::Histogram => map.counters.contains_key(name) || map.gauges.contains_key(name),
    };
    assert!(!clash, "metric {name:?} already registered as another kind");
}

/// A registry view that prefixes every name with its namespace.
#[derive(Debug, Clone)]
pub struct MetricsScope {
    registry: Arc<MetricsRegistry>,
    prefix: String,
}

impl MetricsScope {
    /// The counter `"{prefix}_{name}"`.
    pub fn counter(&self, name: &str) -> Counter {
        self.registry.counter(&format!("{}_{name}", self.prefix))
    }

    /// The gauge `"{prefix}_{name}"`.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.registry.gauge(&format!("{}_{name}", self.prefix))
    }

    /// The histogram `"{prefix}_{name}"`.
    pub fn histogram(&self, name: &str) -> Histogram {
        self.registry.histogram(&format!("{}_{name}", self.prefix))
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Arc<MetricsRegistry> {
        &self.registry
    }
}

/// A point-in-time copy of a registry: sorted metric series plus the
/// retained audit events.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counter values, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// Histogram distributions, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Retained audit events, oldest first.
    pub events: Vec<Event>,
}

impl MetricsSnapshot {
    /// The value of counter `name`, if registered.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// The value of gauge `name`, if registered.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// The distribution of histogram `name`, if registered.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Renders the snapshot as a JSON document — see [`crate::export`].
    pub fn to_json(&self) -> String {
        export::snapshot_to_json(self)
    }

    /// Renders the metrics in the Prometheus text exposition format — see
    /// [`crate::export`].  Events are not representable there; export them
    /// through [`to_json`](Self::to_json) or [`MetricsRegistry::events`].
    pub fn to_prometheus_text(&self) -> String {
        export::snapshot_to_prometheus_text(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_registry_vends_noop_handles_and_empty_snapshots() {
        let registry = MetricsRegistry::disabled();
        assert!(!registry.is_enabled());
        let counter = registry.counter("gps_test_total");
        counter.inc();
        assert_eq!(counter.get(), 0);
        registry.event_with("never", || panic!("fields must not be built"));
        assert!(registry.events().is_empty());
        assert_eq!(registry.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn registration_is_idempotent_per_name() {
        let registry = MetricsRegistry::enabled();
        let a = registry.counter("gps_shared_total");
        let b = registry.counter("gps_shared_total");
        a.inc();
        b.inc();
        assert_eq!(a.get(), 2, "both handles share one cell");
        let h1 = registry.histogram("gps_latency_ns");
        let h2 = registry.histogram("gps_latency_ns");
        h1.record(1);
        h2.record(2);
        assert_eq!(h1.count(), 2);
    }

    #[test]
    fn scope_prefixes_names() {
        let registry = Arc::new(MetricsRegistry::enabled());
        let scope = MetricsRegistry::scope(&registry, "gps_exec");
        scope.counter("evals_total").inc();
        assert_eq!(registry.snapshot().counter("gps_exec_evals_total"), Some(1));
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        MetricsRegistry::enabled().counter("bad name");
    }

    #[test]
    #[should_panic(expected = "already registered as another kind")]
    fn cross_kind_collisions_are_rejected() {
        let registry = MetricsRegistry::enabled();
        registry.counter("gps_thing");
        registry.gauge("gps_thing");
    }

    #[test]
    fn snapshot_is_sorted_and_reads_back() {
        let registry = MetricsRegistry::enabled();
        registry.counter("gps_b_total").add(2);
        registry.counter("gps_a_total").inc();
        registry.gauge("gps_live").set(4);
        registry.histogram("gps_lat_ns").record(100);
        registry.event_with("publish", || vec![("epoch".into(), "1".into())]);

        let snapshot = registry.snapshot();
        let names: Vec<&str> = snapshot.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["gps_a_total", "gps_b_total"]);
        assert_eq!(snapshot.counter("gps_a_total"), Some(1));
        assert_eq!(snapshot.gauge("gps_live"), Some(4));
        assert_eq!(snapshot.histogram("gps_lat_ns").unwrap().count, 1);
        assert_eq!(snapshot.events.len(), 1);
        assert_eq!(snapshot.counter("gps_missing"), None);
    }

    #[test]
    fn concurrent_registration_and_recording_is_consistent() {
        let registry = Arc::new(MetricsRegistry::enabled());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let registry = Arc::clone(&registry);
                scope.spawn(move || {
                    let counter = registry.counter("gps_races_total");
                    let histogram = registry.histogram("gps_race_ns");
                    for i in 0..1_000 {
                        counter.inc();
                        histogram.record(i);
                    }
                });
            }
        });
        let snapshot = registry.snapshot();
        assert_eq!(snapshot.counter("gps_races_total"), Some(8_000));
        assert_eq!(snapshot.histogram("gps_race_ns").unwrap().count, 8_000);
    }
}
