//! The three metric primitives: [`Counter`], [`Gauge`] and [`Histogram`]
//! (with its [`TimerGuard`] RAII span).
//!
//! Every handle is a cheaply cloneable `Option<Arc<...>>`: a disabled handle
//! holds `None` and every recording operation is a single branch — no
//! atomics touched, no `Instant::now()` taken.  Enabled handles share their
//! cell, so clones (and re-registrations of the same name in a
//! [`MetricsRegistry`](crate::MetricsRegistry)) aggregate into one value —
//! exactly what the epoch-advancing layers need, where caches and
//! evaluators are rebuilt per epoch but the metric series must continue.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Number of histogram buckets: one for the value `0`, one per power of two
/// up to `2^63..=u64::MAX`.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing counter over a relaxed atomic.
///
/// Construct through [`MetricsRegistry::counter`](crate::MetricsRegistry),
/// [`Counter::standalone`] (own cell, always counts — for layers that keep
/// per-instance statistics even without a registry) or [`Counter::disabled`]
/// (no cell, recording is one branch).
#[derive(Debug, Clone, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A no-op counter: [`inc`](Self::inc)/[`add`](Self::add) cost one
    /// branch, [`get`](Self::get) reads `0`.
    pub fn disabled() -> Self {
        Self { cell: None }
    }

    /// A counter with a private cell, counting regardless of any registry.
    pub fn standalone() -> Self {
        Self {
            cell: Some(Arc::new(AtomicU64::new(0))),
        }
    }

    pub(crate) fn from_cell(cell: Arc<AtomicU64>) -> Self {
        Self { cell: Some(cell) }
    }

    /// Adds one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// The current value (`0` when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }
}

/// A last-write-wins instantaneous value (active sessions, live epochs).
#[derive(Debug, Clone, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A no-op gauge.
    pub fn disabled() -> Self {
        Self { cell: None }
    }

    /// A gauge with a private cell, recording regardless of any registry.
    pub fn standalone() -> Self {
        Self {
            cell: Some(Arc::new(AtomicU64::new(0))),
        }
    }

    pub(crate) fn from_cell(cell: Arc<AtomicU64>) -> Self {
        Self { cell: Some(cell) }
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// The current value (`0` when disabled).
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }
}

/// The shared cells of one histogram: 65 log2 buckets plus the running sum.
///
/// Bucket `0` counts the value `0`; bucket `i ≥ 1` counts values in
/// `[2^(i-1), 2^i - 1]`; bucket `64` covers `[2^63, u64::MAX]`.  The count
/// is the sum of the buckets, so a snapshot is internally consistent.  The
/// sum wraps modulo `2^64` (irrelevant for latencies; Prometheus renders
/// sums as floats anyway).
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        HistogramSnapshot {
            count: buckets.iter().sum(),
            sum: self.sum.load(Ordering::Relaxed),
            buckets,
        }
    }
}

/// The log2 bucket a value lands in: `0` for `0`, else
/// `64 - leading_zeros(value)`.
#[inline]
pub(crate) fn bucket_index(value: u64) -> usize {
    if value == 0 {
        0
    } else {
        64 - value.leading_zeros() as usize
    }
}

/// The inclusive upper bound of bucket `index` — `0`, `2^index - 1`, or
/// `u64::MAX` for the last bucket.
pub(crate) fn bucket_upper_bound(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= 64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A fixed log2-bucket latency histogram.
///
/// Values are dimensionless `u64`s; the GPS convention is nanoseconds for
/// `*_latency_ns` metrics (see [`Histogram::record_duration`]).
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    cell: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A no-op histogram: recording is one branch,
    /// [`start_timer`](Self::start_timer) never reads the clock.
    pub fn disabled() -> Self {
        Self { cell: None }
    }

    /// A histogram with private cells, recording regardless of any registry.
    pub fn standalone() -> Self {
        Self {
            cell: Some(Arc::new(HistogramCore::new())),
        }
    }

    pub(crate) fn from_cell(cell: Arc<HistogramCore>) -> Self {
        Self { cell: Some(cell) }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.record(value);
        }
    }

    /// Records a duration in nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, duration: Duration) {
        if self.cell.is_some() {
            self.record(u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX));
        }
    }

    /// Starts an RAII span: the elapsed nanoseconds are recorded when the
    /// guard drops.  A disabled histogram returns a guard that never read
    /// the clock and records nothing.
    #[inline]
    pub fn start_timer(&self) -> TimerGuard {
        TimerGuard {
            start: self.cell.is_some().then(Instant::now),
            histogram: self.clone(),
        }
    }

    /// The number of recorded observations (`0` when disabled).
    pub fn count(&self) -> u64 {
        self.snapshot().count
    }

    /// A consistent copy of the current distribution (empty when disabled).
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.cell
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |c| c.snapshot())
    }

    /// Whether this handle records anywhere.
    pub fn is_enabled(&self) -> bool {
        self.cell.is_some()
    }
}

/// A point-in-time copy of one histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total observations (sum of `buckets`).
    pub count: u64,
    /// Sum of observed values, modulo `2^64`.
    pub sum: u64,
    /// Per-bucket (non-cumulative) observation counts;
    /// `buckets.len() == HISTOGRAM_BUCKETS`.
    pub buckets: Vec<u64>,
}

impl HistogramSnapshot {
    fn empty() -> Self {
        Self {
            count: 0,
            sum: 0,
            buckets: vec![0; HISTOGRAM_BUCKETS],
        }
    }

    /// The inclusive upper bound of bucket `index`.
    pub fn upper_bound(index: usize) -> u64 {
        bucket_upper_bound(index)
    }

    /// The index of the highest non-empty bucket, or `None` when empty.
    pub fn highest_nonempty(&self) -> Option<usize> {
        self.buckets.iter().rposition(|&c| c > 0)
    }
}

/// RAII span recording its elapsed wall time into a [`Histogram`] on drop.
///
/// Holds its own (cheap) clone of the histogram handle, so the span can
/// outlive the borrow it was started from.
#[derive(Debug)]
pub struct TimerGuard {
    start: Option<Instant>,
    histogram: Histogram,
}

impl TimerGuard {
    /// Stops the span now, recording the elapsed time (instead of at drop).
    pub fn stop(mut self) {
        self.finish();
    }

    /// Discards the span without recording anything.
    pub fn cancel(mut self) {
        self.start = None;
    }

    fn finish(&mut self) {
        if let Some(start) = self.start.take() {
            self.histogram.record_duration(start.elapsed());
        }
    }
}

impl Drop for TimerGuard {
    fn drop(&mut self) {
        self.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_record_nothing() {
        let counter = Counter::disabled();
        counter.inc();
        counter.add(10);
        assert_eq!(counter.get(), 0);
        assert!(!counter.is_enabled());

        let gauge = Gauge::disabled();
        gauge.set(7);
        assert_eq!(gauge.get(), 0);

        let histogram = Histogram::disabled();
        histogram.record(1);
        drop(histogram.start_timer());
        assert_eq!(histogram.count(), 0);
        assert!(!histogram.is_enabled());
    }

    #[test]
    fn standalone_counters_count_and_clones_share() {
        let counter = Counter::standalone();
        let clone = counter.clone();
        counter.inc();
        clone.add(2);
        assert_eq!(counter.get(), 3);
        assert_eq!(clone.get(), 3);
    }

    #[test]
    fn gauge_is_last_write_wins() {
        let gauge = Gauge::standalone();
        gauge.set(5);
        gauge.set(2);
        assert_eq!(gauge.get(), 2);
    }

    #[test]
    fn timer_guard_records_once_on_drop() {
        let histogram = Histogram::standalone();
        {
            let _span = histogram.start_timer();
        }
        assert_eq!(histogram.count(), 1);
        histogram.start_timer().stop();
        assert_eq!(histogram.count(), 2);
        histogram.start_timer().cancel();
        assert_eq!(histogram.count(), 2, "cancel records nothing");
    }

    #[test]
    fn zero_and_max_land_in_the_outermost_buckets() {
        let histogram = Histogram::standalone();
        histogram.record(0);
        histogram.record(u64::MAX);
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.buckets[0], 1, "0 lands in bucket 0");
        assert_eq!(
            snapshot.buckets[HISTOGRAM_BUCKETS - 1],
            1,
            "u64::MAX lands in the last bucket"
        );
        assert_eq!(snapshot.count, 2);
        assert_eq!(snapshot.sum, u64::MAX, "0 + u64::MAX");
    }

    /// Reference bucketing: the smallest bucket whose inclusive upper bound
    /// admits the value.  The shipped `bucket_index` must agree everywhere.
    fn reference_bucket(value: u64) -> usize {
        (0..HISTOGRAM_BUCKETS)
            .find(|&i| value <= bucket_upper_bound(i))
            .expect("the last bucket admits every u64")
    }

    #[test]
    fn bucket_index_matches_the_reference_at_every_boundary() {
        let mut probes = vec![0u64, 1, 2, 3, u64::MAX];
        for shift in 1..64 {
            let bound = 1u64 << shift;
            probes.extend([bound - 1, bound, bound + 1]);
        }
        for value in probes {
            assert_eq!(
                bucket_index(value),
                reference_bucket(value),
                "value {value}"
            );
        }
    }

    #[test]
    fn bucket_index_matches_the_reference_on_a_pseudorandom_sweep() {
        // Deterministic xorshift — no dependency on a rand crate.
        let mut state = 0x9e37_79b9_7f4a_7c15u64;
        for _ in 0..10_000 {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            assert_eq!(
                bucket_index(state),
                reference_bucket(state),
                "value {state}"
            );
        }
    }

    #[test]
    fn buckets_partition_the_domain() {
        // Upper bounds are strictly increasing and every bucket's lower edge
        // is the previous bound + 1 — off-by-one-proof coverage of u64.
        for i in 1..HISTOGRAM_BUCKETS {
            let previous = bucket_upper_bound(i - 1);
            let current = bucket_upper_bound(i);
            assert!(previous < current, "bucket {i}");
            assert_eq!(
                bucket_index(previous.wrapping_add(1)),
                i,
                "lower edge of bucket {i}"
            );
            assert_eq!(bucket_index(current), i, "upper edge of bucket {i}");
        }
        assert_eq!(bucket_upper_bound(HISTOGRAM_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn concurrent_recording_loses_no_counts() {
        let histogram = Histogram::standalone();
        let counter = Counter::standalone();
        let threads = 8;
        let per_thread = 5_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let histogram = histogram.clone();
                let counter = counter.clone();
                scope.spawn(move || {
                    for i in 0..per_thread {
                        histogram.record(t * per_thread + i);
                        counter.inc();
                    }
                });
            }
        });
        assert_eq!(counter.get(), threads * per_thread);
        let snapshot = histogram.snapshot();
        assert_eq!(snapshot.count, threads * per_thread);
        assert_eq!(
            snapshot.buckets.iter().sum::<u64>(),
            threads * per_thread,
            "bucket totals agree with the count"
        );
    }
}
