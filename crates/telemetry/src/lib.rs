//! `gps-telemetry` — zero-dependency observability for the GPS stack.
//!
//! Every runtime layer of GPS (execution engine, eval cache, interactive
//! loop, MVCC store, durability layer, session service) reports through the
//! same three primitives:
//!
//! * [`Counter`] / [`Gauge`] — lock-free relaxed atomics;
//! * [`Histogram`] — a fixed log2-bucket latency distribution recorded
//!   either directly or through a [`TimerGuard`] RAII span;
//!
//! all owned by a sharable [`MetricsRegistry`] with namespaced registration
//! (see [`MetricsScope`]), plus a bounded ring-buffer [`EventLog`] for
//! structured audit events (session open/step/close, stage/publish,
//! checkpoint, recovery, epoch retirement).
//!
//! The registry exports one coherent [`MetricsSnapshot`] with two renderers
//! — [`MetricsSnapshot::to_json`] and
//! [`MetricsSnapshot::to_prometheus_text`] (Prometheus text exposition
//! format) — and ships tiny std-only validators
//! ([`validate_json`], [`validate_prometheus_text`]) so exporter drift can
//! fail CI without pulling in a parser dependency.
//!
//! ## The disabled path costs one branch
//!
//! Instrument-everything only works if the un-instrumented configuration
//! stays free.  Handles vended by [`MetricsRegistry::disabled`] carry no
//! allocation: [`Counter::inc`] is a `None` check, and
//! [`Histogram::start_timer`] never calls `Instant::now()`.  Metric values
//! must never influence control flow, so a workload run with metrics enabled
//! produces byte-identical results to the same run with metrics disabled
//! (conformance-tested at the workspace root).
//!
//! ## Example
//!
//! ```
//! use gps_telemetry::MetricsRegistry;
//! use std::sync::Arc;
//!
//! let registry = Arc::new(MetricsRegistry::enabled());
//! let scope = MetricsRegistry::scope(&registry, "gps_demo");
//! let requests = scope.counter("requests_total");
//! let latency = scope.histogram("latency_ns");
//!
//! for _ in 0..3 {
//!     let _span = latency.start_timer();
//!     requests.inc();
//! }
//!
//! let snapshot = registry.snapshot();
//! assert_eq!(snapshot.counter("gps_demo_requests_total"), Some(3));
//! assert!(registry.to_prometheus_text().contains("gps_demo_latency_ns_count 3"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod event;
pub mod export;
pub mod metric;
pub mod registry;

pub use event::{Event, EventLog};
pub use export::{validate_json, validate_prometheus_text};
pub use metric::{Counter, Gauge, Histogram, HistogramSnapshot, TimerGuard, HISTOGRAM_BUCKETS};
pub use registry::{MetricsRegistry, MetricsScope, MetricsSnapshot};
