//! Exporters and their drift guards.
//!
//! Two renderers over [`MetricsSnapshot`]:
//!
//! * [`snapshot_to_json`] — one JSON document with counters, gauges,
//!   histograms (cumulative buckets) and the audit events;
//! * [`snapshot_to_prometheus_text`] — the Prometheus text exposition
//!   format (`# TYPE` comments, `_bucket{le="..."}` / `_sum` / `_count`
//!   series for histograms).
//!
//! Both are deterministic: series are emitted in sorted name order and
//! histograms only spell buckets up to the highest non-empty one, so equal
//! workloads export equal bytes.
//!
//! The module also ships two tiny std-only validators —
//! [`validate_json`] (a full recursive-descent JSON parser) and
//! [`validate_prometheus_text`] (a line validator of the exposition
//! grammar) — used by `rpq_baseline --smoke` so that exporter drift fails
//! CI without adding a parser dependency.

use crate::metric::HistogramSnapshot;
use crate::registry::MetricsSnapshot;
use std::fmt::Write as _;

// ---------------------------------------------------------------------------
// JSON rendering
// ---------------------------------------------------------------------------

/// Escapes `s` into a JSON string literal (without the quotes).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// The cumulative `(le, count)` pairs a histogram exports: every bucket up
/// to the highest non-empty one, then `+Inf`.  `le` is rendered as a string
/// so `+Inf` needs no special casing downstream.
fn cumulative_buckets(histogram: &HistogramSnapshot) -> Vec<(String, u64)> {
    let mut out = Vec::new();
    let mut running = 0;
    if let Some(highest) = histogram.highest_nonempty() {
        for (index, count) in histogram.buckets.iter().enumerate().take(highest + 1) {
            running += count;
            out.push((HistogramSnapshot::upper_bound(index).to_string(), running));
        }
    }
    out.push(("+Inf".to_string(), histogram.count));
    out
}

/// Renders `snapshot` as one JSON document.
pub fn snapshot_to_json(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    out.push_str("{\n  \"counters\": {");
    for (i, (name, value)) in snapshot.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        escape_json(name, &mut out);
        let _ = write!(out, "\": {value}");
    }
    out.push_str("\n  },\n  \"gauges\": {");
    for (i, (name, value)) in snapshot.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        escape_json(name, &mut out);
        let _ = write!(out, "\": {value}");
    }
    out.push_str("\n  },\n  \"histograms\": {");
    for (i, (name, histogram)) in snapshot.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n    \"");
        escape_json(name, &mut out);
        let _ = write!(
            out,
            "\": {{\"count\": {}, \"sum\": {}, \"buckets\": [",
            histogram.count, histogram.sum
        );
        for (j, (le, count)) in cumulative_buckets(histogram).iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{{\"le\": \"{le}\", \"count\": {count}}}");
        }
        out.push_str("]}");
    }
    out.push_str("\n  },\n  \"events\": [");
    for (i, event) in snapshot.events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "\n    {{\"seq\": {}, \"kind\": \"", event.seq);
        escape_json(&event.kind, &mut out);
        out.push_str("\", \"fields\": {");
        for (j, (key, value)) in event.fields.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            out.push('"');
            escape_json(key, &mut out);
            out.push_str("\": \"");
            escape_json(value, &mut out);
            out.push('"');
        }
        out.push_str("}}");
    }
    out.push_str("\n  ]\n}\n");
    out
}

// ---------------------------------------------------------------------------
// Prometheus text exposition rendering
// ---------------------------------------------------------------------------

/// Renders the metrics of `snapshot` in the Prometheus text exposition
/// format.  Events have no representation there and are omitted.
pub fn snapshot_to_prometheus_text(snapshot: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &snapshot.counters {
        let _ = writeln!(out, "# TYPE {name} counter");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, value) in &snapshot.gauges {
        let _ = writeln!(out, "# TYPE {name} gauge");
        let _ = writeln!(out, "{name} {value}");
    }
    for (name, histogram) in &snapshot.histograms {
        let _ = writeln!(out, "# TYPE {name} histogram");
        for (le, count) in cumulative_buckets(histogram) {
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {count}");
        }
        let _ = writeln!(out, "{name}_sum {}", histogram.sum);
        let _ = writeln!(out, "{name}_count {}", histogram.count);
    }
    out
}

// ---------------------------------------------------------------------------
// JSON validation
// ---------------------------------------------------------------------------

/// Validates that `text` is one well-formed JSON document (full
/// recursive-descent grammar check; values are not retained).
pub fn validate_json(text: &str) -> Result<(), String> {
    let mut parser = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    parser.skip_ws();
    parser.value(0)?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(format!("trailing bytes at offset {}", parser.pos));
    }
    Ok(())
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

const MAX_JSON_DEPTH: usize = 128;

impl JsonParser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at offset {}",
                byte as char, self.pos
            ))
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(format!("expected {word:?} at offset {}", self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_JSON_DEPTH {
            return Err("nesting too deep".to_string());
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {other:?} at offset {}", self.pos)),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or '}}', got {other:?}")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                other => return Err(format!("expected ',' or ']', got {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                match self.peek() {
                                    Some(c) if c.is_ascii_hexdigit() => self.pos += 1,
                                    _ => {
                                        return Err(format!(
                                            "bad \\u escape at offset {}",
                                            self.pos
                                        ))
                                    }
                                }
                            }
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                }
                Some(c) if c < 0x20 => {
                    return Err(format!("raw control byte in string at offset {}", self.pos))
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(format!("bad number at offset {start}")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("bad fraction at offset {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(format!("bad exponent at offset {}", self.pos));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Prometheus text validation
// ---------------------------------------------------------------------------

/// Validates `text` against the Prometheus text exposition grammar:
/// well-formed `# TYPE` / `# HELP` comments, metric names matching
/// `[a-zA-Z_:][a-zA-Z0-9_:]*`, quoted+escaped label values, finite or
/// `+Inf`/`-Inf`/`NaN` sample values — and, strictly, that every sample
/// belongs to a `# TYPE`-declared family (histogram samples may carry the
/// `_bucket`/`_sum`/`_count` suffixes, and `_bucket` lines must have an
/// `le` label).  Our exporter always declares, so an undeclared sample is
/// drift.
pub fn validate_prometheus_text(text: &str) -> Result<(), String> {
    let mut families: std::collections::BTreeMap<String, String> = Default::default();
    for (lineno, line) in text.lines().enumerate() {
        let lineno = lineno + 1;
        if line.trim().is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut parts = comment.trim_start().splitn(3, ' ');
            match parts.next() {
                Some("TYPE") => {
                    let name = parts
                        .next()
                        .ok_or(format!("line {lineno}: TYPE without a name"))?;
                    if !valid_metric_name(name) {
                        return Err(format!("line {lineno}: bad metric name {name:?}"));
                    }
                    let kind = parts
                        .next()
                        .ok_or(format!("line {lineno}: TYPE without a kind"))?;
                    if !matches!(
                        kind,
                        "counter" | "gauge" | "histogram" | "summary" | "untyped"
                    ) {
                        return Err(format!("line {lineno}: unknown TYPE {kind:?}"));
                    }
                    if families
                        .insert(name.to_string(), kind.to_string())
                        .is_some()
                    {
                        return Err(format!("line {lineno}: duplicate TYPE for {name}"));
                    }
                }
                Some("HELP") => {
                    let name = parts
                        .next()
                        .ok_or(format!("line {lineno}: HELP without a name"))?;
                    if !valid_metric_name(name) {
                        return Err(format!("line {lineno}: bad metric name {name:?}"));
                    }
                }
                // Other comments are legal and ignored.
                _ => {}
            }
            continue;
        }
        validate_sample_line(line, lineno, &families)?;
    }
    Ok(())
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c == '_' || c == ':' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit())
        })
}

fn valid_label_name(name: &str) -> bool {
    !name.is_empty()
        && name
            .chars()
            .enumerate()
            .all(|(i, c)| c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()))
}

/// The family a sample belongs to, resolving histogram suffixes.
fn family_of<'a>(
    name: &'a str,
    families: &std::collections::BTreeMap<String, String>,
) -> Option<(&'a str, String)> {
    if let Some(kind) = families.get(name) {
        return Some((name, kind.clone()));
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if let Some(kind) = families.get(stem) {
                if kind == "histogram" || kind == "summary" {
                    return Some((stem, kind.clone()));
                }
            }
        }
    }
    None
}

fn validate_sample_line(
    line: &str,
    lineno: usize,
    families: &std::collections::BTreeMap<String, String>,
) -> Result<(), String> {
    // Metric name.
    let name_end = line
        .find(|c: char| !(c == '_' || c == ':' || c.is_ascii_alphanumeric()))
        .unwrap_or(line.len());
    let name = &line[..name_end];
    if !valid_metric_name(name) {
        return Err(format!("line {lineno}: bad sample name {name:?}"));
    }
    let mut rest = &line[name_end..];

    // Optional label block.
    let mut labels: Vec<(String, String)> = Vec::new();
    if let Some(stripped) = rest.strip_prefix('{') {
        let close = stripped
            .find('}')
            .ok_or(format!("line {lineno}: unterminated label block"))?;
        let block = &stripped[..close];
        rest = &stripped[close + 1..];
        for pair in block.split(',').filter(|p| !p.is_empty()) {
            let (key, value) = pair
                .split_once('=')
                .ok_or(format!("line {lineno}: label without '='"))?;
            if !valid_label_name(key) {
                return Err(format!("line {lineno}: bad label name {key:?}"));
            }
            let value = value
                .strip_prefix('"')
                .and_then(|v| v.strip_suffix('"'))
                .ok_or(format!("line {lineno}: unquoted label value"))?;
            let mut chars = value.chars();
            while let Some(c) = chars.next() {
                if c == '\\' && !matches!(chars.next(), Some('\\' | '"' | 'n')) {
                    return Err(format!("line {lineno}: bad escape in label value"));
                }
            }
            labels.push((key.to_string(), value.to_string()));
        }
    }

    // Value (and optional timestamp).
    let mut tokens = rest.split_whitespace();
    let value = tokens
        .next()
        .ok_or(format!("line {lineno}: sample without a value"))?;
    let numeric = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
    if !numeric {
        return Err(format!("line {lineno}: unparseable value {value:?}"));
    }
    if let Some(timestamp) = tokens.next() {
        if timestamp.parse::<i64>().is_err() {
            return Err(format!("line {lineno}: bad timestamp {timestamp:?}"));
        }
    }
    if tokens.next().is_some() {
        return Err(format!("line {lineno}: trailing tokens"));
    }

    // Family membership.
    let (_, kind) =
        family_of(name, families).ok_or(format!("line {lineno}: sample {name:?} has no # TYPE"))?;
    if kind == "histogram" && name.ends_with("_bucket") && !labels.iter().any(|(k, _)| k == "le") {
        return Err(format!("line {lineno}: histogram bucket without le label"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricsRegistry;

    fn populated() -> MetricsRegistry {
        let registry = MetricsRegistry::enabled();
        registry.counter("gps_requests_total").add(3);
        registry.gauge("gps_active").set(2);
        let histogram = registry.histogram("gps_latency_ns");
        histogram.record(0);
        histogram.record(5);
        histogram.record(1_000);
        registry.event_with("publish", || {
            vec![
                ("epoch".into(), "1".into()),
                ("note".into(), "quote\" and \\slash".into()),
            ]
        });
        registry
    }

    #[test]
    fn json_export_validates_and_carries_everything() {
        let json = populated().to_json();
        validate_json(&json).expect("exported JSON parses");
        assert!(json.contains("\"gps_requests_total\": 3"));
        assert!(json.contains("\"gps_active\": 2"));
        assert!(json.contains("\"le\": \"+Inf\", \"count\": 3"));
        assert!(json.contains("\"kind\": \"publish\""));
        assert!(json.contains("quote\\\" and \\\\slash"));
    }

    #[test]
    fn prometheus_export_validates_and_is_cumulative() {
        let text = populated().to_prometheus_text();
        validate_prometheus_text(&text).expect("exported text validates");
        assert!(text.contains("# TYPE gps_requests_total counter"));
        assert!(text.contains("gps_requests_total 3"));
        assert!(text.contains("# TYPE gps_latency_ns histogram"));
        // 0 → bucket 0; 5 → bucket [4,7]; 1000 → bucket [512,1023].
        assert!(text.contains("gps_latency_ns_bucket{le=\"0\"} 1"));
        assert!(text.contains("gps_latency_ns_bucket{le=\"7\"} 2"));
        assert!(text.contains("gps_latency_ns_bucket{le=\"1023\"} 3"));
        assert!(text.contains("gps_latency_ns_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("gps_latency_ns_sum 1005"));
        assert!(text.contains("gps_latency_ns_count 3"));
    }

    #[test]
    fn empty_snapshot_exports_validate() {
        let registry = MetricsRegistry::disabled();
        validate_json(&registry.to_json()).unwrap();
        validate_prometheus_text(&registry.to_prometheus_text()).unwrap();
    }

    #[test]
    fn exports_are_deterministic() {
        let a = populated();
        let b = populated();
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.to_prometheus_text(), b.to_prometheus_text());
    }

    #[test]
    fn json_validator_accepts_the_grammar() {
        for good in [
            "null",
            "true",
            " [1, 2.5, -3e2, \"x\\u0041\", {\"k\": []}] ",
            "{\"a\": {\"b\": [false, null]}}",
            "-0.5",
        ] {
            validate_json(good).unwrap_or_else(|e| panic!("{good:?}: {e}"));
        }
    }

    #[test]
    fn json_validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\" 1}",
            "{'a': 1}",
            "01",
            "1.",
            "\"unterminated",
            "nulll",
            "[1] garbage",
            "{\"a\": 1,}",
        ] {
            assert!(validate_json(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn prometheus_validator_rejects_drift() {
        for bad in [
            // Sample without a TYPE declaration.
            "gps_x 1\n",
            // Unknown kind.
            "# TYPE gps_x widget\ngps_x 1\n",
            // Duplicate family.
            "# TYPE gps_x counter\n# TYPE gps_x counter\ngps_x 1\n",
            // Unparseable value.
            "# TYPE gps_x counter\ngps_x one\n",
            // Histogram bucket without le.
            "# TYPE gps_h histogram\ngps_h_bucket 1\n",
            // Unquoted label value.
            "# TYPE gps_x counter\ngps_x{l=v} 1\n",
            // Bad metric name.
            "# TYPE 1bad counter\n",
        ] {
            assert!(
                validate_prometheus_text(bad).is_err(),
                "{bad:?} should fail"
            );
        }
    }

    #[test]
    fn prometheus_validator_accepts_the_grammar() {
        let good = "\n# HELP gps_x a counter\n# TYPE gps_x counter\ngps_x{shard=\"a\",zone=\"eu\"} 1 1700000000\n# TYPE gps_h histogram\ngps_h_bucket{le=\"+Inf\"} 0\ngps_h_sum 0\ngps_h_count 0\n";
        validate_prometheus_text(good).unwrap();
    }
}
