//! A bounded ring-buffer audit log of structured events.
//!
//! Events are the narrative complement to the metrics: "session 3 opened at
//! epoch 7", "publish advanced to epoch 8, retiring 2 epochs", "checkpoint
//! failed: ...".  The log keeps the most recent `capacity` events; older
//! ones are dropped (their sequence numbers keep counting, so a reader can
//! tell how many were shed).
//!
//! Events carry a monotonic sequence number instead of a wall-clock
//! timestamp: recording stays cheap and deterministic, and exports are
//! byte-stable for a given workload — the property the transcript-identity
//! conformance suite leans on.

use std::collections::VecDeque;
use std::sync::Mutex;

/// One structured audit event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (0-based, counts shed events too).
    pub seq: u64,
    /// The event kind, e.g. `session_open`, `publish`, `checkpoint_error`.
    pub kind: String,
    /// Key/value detail fields, in recording order.
    pub fields: Vec<(String, String)>,
}

/// A bounded, thread-safe ring buffer of [`Event`]s.
#[derive(Debug)]
pub struct EventLog {
    capacity: usize,
    state: Mutex<State>,
}

#[derive(Debug, Default)]
struct State {
    next_seq: u64,
    ring: VecDeque<Event>,
}

impl EventLog {
    /// A log keeping the most recent `capacity` events (at least 1).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            state: Mutex::new(State::default()),
        }
    }

    /// Appends an event, shedding the oldest when full.
    pub fn record(&self, kind: &str, fields: Vec<(String, String)>) {
        let mut state = self.state.lock().expect("event log poisoned");
        let seq = state.next_seq;
        state.next_seq += 1;
        if state.ring.len() == self.capacity {
            state.ring.pop_front();
        }
        state.ring.push_back(Event {
            seq,
            kind: kind.to_string(),
            fields,
        });
    }

    /// The retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        let state = self.state.lock().expect("event log poisoned");
        state.ring.iter().cloned().collect()
    }

    /// Total events ever recorded (including shed ones).
    pub fn total_recorded(&self) -> u64 {
        self.state.lock().expect("event log poisoned").next_seq
    }

    /// The retention capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_fields() {
        let log = EventLog::new(8);
        log.record("publish", vec![("epoch".into(), "1".into())]);
        log.record("checkpoint", vec![]);
        let events = log.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].kind, "publish");
        assert_eq!(events[0].fields, vec![("epoch".into(), "1".into())]);
        assert_eq!(events[1].seq, 1);
    }

    #[test]
    fn ring_sheds_oldest_but_keeps_counting() {
        let log = EventLog::new(2);
        for i in 0..5 {
            log.record("e", vec![("i".into(), i.to_string())]);
        }
        let events = log.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 3, "oldest retained");
        assert_eq!(events[1].seq, 4);
        assert_eq!(log.total_recorded(), 5);
    }

    #[test]
    fn capacity_is_at_least_one() {
        let log = EventLog::new(0);
        log.record("only", vec![]);
        assert_eq!(log.capacity(), 1);
        assert_eq!(log.snapshot().len(), 1);
    }

    #[test]
    fn concurrent_recording_counts_every_event() {
        let log = EventLog::new(64);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..100 {
                        log.record("tick", vec![]);
                    }
                });
            }
        });
        assert_eq!(log.total_recorded(), 400);
        assert_eq!(log.snapshot().len(), 64);
    }
}
