//! Pretty-printing of regular expressions in the paper's syntax.
//!
//! The printer emits the same concrete syntax the parser accepts —
//! `(tram+bus)*·cinema` — resolving label identifiers through a
//! [`LabelInterner`].  Printing then re-parsing yields an equal expression
//! (a property test in the crate's test suite checks this).

use crate::regex::Regex;
use gps_graph::LabelInterner;

/// Relative binding strength used to decide where parentheses are needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum Precedence {
    Union = 0,
    Concat = 1,
    Star = 2,
}

fn precedence(regex: &Regex) -> Precedence {
    match regex {
        Regex::Union(_) => Precedence::Union,
        Regex::Concat(_) => Precedence::Concat,
        Regex::Empty | Regex::Epsilon | Regex::Symbol(_) | Regex::Star(_) => Precedence::Star,
    }
}

/// Renders `regex` using the label names of `labels`.  Unknown labels are
/// rendered as `?<id>` rather than panicking, so partially-constructed
/// expressions can still be displayed in logs.
pub fn print(regex: &Regex, labels: &LabelInterner) -> String {
    let mut out = String::new();
    write_regex(regex, labels, Precedence::Union, &mut out);
    out
}

fn write_regex(regex: &Regex, labels: &LabelInterner, parent: Precedence, out: &mut String) {
    let own = precedence(regex);
    let needs_parens = own < parent;
    if needs_parens {
        out.push('(');
    }
    match regex {
        Regex::Empty => out.push('∅'),
        Regex::Epsilon => out.push('ε'),
        Regex::Symbol(label) => match labels.name(*label) {
            Some(name) => out.push_str(name),
            None => out.push_str(&format!("?{}", label.raw())),
        },
        Regex::Concat(parts) => {
            for (i, part) in parts.iter().enumerate() {
                if i > 0 {
                    out.push('·');
                }
                write_regex(part, labels, Precedence::Concat, out);
            }
        }
        Regex::Union(parts) => {
            for (i, part) in parts.iter().enumerate() {
                if i > 0 {
                    out.push('+');
                }
                write_regex(part, labels, Precedence::Concat, out);
            }
        }
        Regex::Star(inner) => {
            write_regex(inner, labels, Precedence::Star, out);
            out.push('*');
        }
    }
    if needs_parens {
        out.push(')');
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn alphabet() -> LabelInterner {
        let mut labels = LabelInterner::new();
        labels.intern("tram");
        labels.intern("bus");
        labels.intern("cinema");
        labels
    }

    #[test]
    fn prints_the_motivating_query() {
        let labels = alphabet();
        let q = parse("(tram+bus)*.cinema", &labels).unwrap();
        assert_eq!(print(&q, &labels), "(tram+bus)*·cinema");
    }

    #[test]
    fn prints_atoms() {
        let labels = alphabet();
        assert_eq!(print(&Regex::Empty, &labels), "∅");
        assert_eq!(print(&Regex::Epsilon, &labels), "ε");
        let bus = labels.get("bus").unwrap();
        assert_eq!(print(&Regex::symbol(bus), &labels), "bus");
    }

    #[test]
    fn unknown_labels_render_with_placeholder() {
        let labels = alphabet();
        let ghost = Regex::symbol(gps_graph::LabelId::new(99));
        assert_eq!(print(&ghost, &labels), "?99");
    }

    #[test]
    fn parenthesization_respects_precedence() {
        let labels = alphabet();
        let tram = labels.get("tram").unwrap();
        let bus = labels.get("bus").unwrap();
        let cinema = labels.get("cinema").unwrap();
        // (tram+bus)·cinema needs parens around the union.
        let q = Regex::concat([
            Regex::union([Regex::symbol(tram), Regex::symbol(bus)]),
            Regex::symbol(cinema),
        ]);
        assert_eq!(print(&q, &labels), "(tram+bus)·cinema");
        // tram+(bus·cinema) does not need parens.
        let q2 = Regex::union([
            Regex::symbol(tram),
            Regex::concat([Regex::symbol(bus), Regex::symbol(cinema)]),
        ]);
        assert_eq!(print(&q2, &labels), "tram+bus·cinema");
        // Star of a union needs parens.
        let q3 = Regex::star(Regex::union([Regex::symbol(tram), Regex::symbol(bus)]));
        assert_eq!(print(&q3, &labels), "(tram+bus)*");
    }

    #[test]
    fn print_parse_round_trip() {
        let labels = alphabet();
        for syntax in [
            "(tram+bus)*.cinema",
            "tram",
            "tram+bus·cinema",
            "((tram·bus)*+cinema)*",
            "ε+tram",
            "tram?·bus",
        ] {
            let q = parse(syntax, &labels).unwrap();
            let printed = print(&q, &labels);
            let reparsed = parse(&printed, &labels).unwrap();
            assert_eq!(q, reparsed, "round trip failed for {syntax} -> {printed}");
        }
    }
}
