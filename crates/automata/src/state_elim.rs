//! Conversion of automata back to regular expressions by state elimination.
//!
//! The learner works on automata (prefix-tree acceptors generalized by state
//! merging), but the user is shown the learned query as a regular expression
//! — the paper's `(tram+bus)*·cinema`.  The classic generalized-NFA state
//! elimination performs that conversion: add a fresh start and a fresh accept
//! state, then eliminate the original states one by one, rewriting the edge
//! expressions.

use crate::dfa::Dfa;
use crate::regex::Regex;
use std::collections::BTreeMap;

/// Converts a DFA into a regular expression denoting the same language.
///
/// The output is produced by state elimination and simplified by the
/// [`Regex`] smart constructors; it is correct but not guaranteed to be the
/// shortest expression for the language.
pub fn dfa_to_regex(dfa: &Dfa) -> Regex {
    let trim = dfa.trim();
    if trim.accepting_states().is_empty() {
        return Regex::Empty;
    }
    let n = trim.state_count();
    // GNFA states: 0..n are the original states, n is the new start, n+1 the
    // new accept.  `edges[(i, j)]` is the expression labelling the edge i→j.
    let start = n;
    let accept = n + 1;
    let mut edges: BTreeMap<(usize, usize), Regex> = BTreeMap::new();

    let add_edge = |edges: &mut BTreeMap<(usize, usize), Regex>, from, to, regex: Regex| {
        if regex == Regex::Empty {
            return;
        }
        edges
            .entry((from, to))
            .and_modify(|existing| *existing = Regex::union([existing.clone(), regex.clone()]))
            .or_insert(regex);
    };

    add_edge(&mut edges, start, trim.start(), Regex::Epsilon);
    for state in 0..n {
        if trim.is_accepting(state) {
            add_edge(&mut edges, state, accept, Regex::Epsilon);
        }
        for (symbol, target) in trim.transitions_from(state) {
            add_edge(&mut edges, state, target, Regex::symbol(symbol));
        }
    }

    // Eliminate original states one by one.
    for victim in 0..n {
        let self_loop = edges.remove(&(victim, victim));
        let loop_star = match self_loop {
            Some(r) => Regex::star(r),
            None => Regex::Epsilon,
        };
        let incoming: Vec<(usize, Regex)> = edges
            .iter()
            .filter(|&(&(_, to), _)| to == victim)
            .map(|(&(from, _), r)| (from, r.clone()))
            .collect();
        let outgoing: Vec<(usize, Regex)> = edges
            .iter()
            .filter(|&(&(from, _), _)| from == victim)
            .map(|(&(_, to), r)| (to, r.clone()))
            .collect();
        // Remove all edges touching the victim.
        edges.retain(|&(from, to), _| from != victim && to != victim);
        // Reconnect every in-neighbour to every out-neighbour.
        for (from, in_regex) in &incoming {
            for (to, out_regex) in &outgoing {
                let through =
                    Regex::concat([in_regex.clone(), loop_star.clone(), out_regex.clone()]);
                add_edge(&mut edges, *from, *to, through);
            }
        }
    }

    edges.remove(&(start, accept)).unwrap_or(Regex::Empty)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decide::regex_equivalent;
    use gps_graph::LabelId;

    fn l(i: u32) -> LabelId {
        LabelId::new(i)
    }

    fn round_trip_preserves_language(r: &Regex) {
        let dfa = Dfa::from_regex(r);
        let back = dfa_to_regex(&dfa);
        assert!(
            regex_equivalent(r, &back),
            "round trip changed the language of {r:?}: got {back:?}"
        );
    }

    #[test]
    fn round_trips_basic_expressions() {
        round_trip_preserves_language(&Regex::Empty);
        round_trip_preserves_language(&Regex::Epsilon);
        round_trip_preserves_language(&Regex::symbol(l(0)));
        round_trip_preserves_language(&Regex::word(&[l(0), l(1), l(2)]));
    }

    #[test]
    fn round_trips_the_motivating_query() {
        let q = Regex::concat([
            Regex::star(Regex::union([Regex::symbol(l(0)), Regex::symbol(l(1))])),
            Regex::symbol(l(2)),
        ]);
        round_trip_preserves_language(&q);
    }

    #[test]
    fn round_trips_star_and_union_combinations() {
        let a = Regex::symbol(l(0));
        let b = Regex::symbol(l(1));
        let c = Regex::symbol(l(2));
        round_trip_preserves_language(&Regex::star(a.clone()));
        round_trip_preserves_language(&Regex::plus(b.clone()));
        round_trip_preserves_language(&Regex::union([
            Regex::word(&[l(0), l(1)]),
            Regex::word(&[l(2)]),
        ]));
        round_trip_preserves_language(&Regex::concat([
            Regex::optional(a.clone()),
            Regex::star(Regex::concat([b.clone(), c.clone()])),
        ]));
        round_trip_preserves_language(&Regex::star(Regex::union([
            Regex::concat([a.clone(), b.clone()]),
            c.clone(),
        ])));
    }

    #[test]
    fn empty_language_converts_to_empty_regex() {
        assert_eq!(dfa_to_regex(&Dfa::empty_language()), Regex::Empty);
        let mut dfa = Dfa::empty_language();
        let unreachable = dfa.add_state(true);
        let _ = unreachable;
        assert_eq!(dfa_to_regex(&dfa), Regex::Empty);
    }

    #[test]
    fn epsilon_language_converts_to_nullable_regex() {
        let r = dfa_to_regex(&Dfa::epsilon_language());
        assert!(r.nullable());
        assert!(regex_equivalent(&r, &Regex::Epsilon));
    }

    #[test]
    fn handcrafted_two_state_loop() {
        // DFA for (ab)* : s0 -a-> s1 -b-> s0, s0 accepting.
        let mut dfa = Dfa::epsilon_language();
        let s1 = dfa.add_state(false);
        dfa.add_transition(0, l(0), s1);
        dfa.add_transition(s1, l(1), 0);
        let r = dfa_to_regex(&dfa);
        let expected = Regex::star(Regex::word(&[l(0), l(1)]));
        assert!(regex_equivalent(&r, &expected));
    }
}
