//! DFA minimization by partition refinement (Moore's algorithm) followed by
//! trimming.
//!
//! The input may have a partial transition function; it is completed over its
//! own used alphabet before refinement and the sink introduced by completion
//! is removed again by the final trim, so the result is the minimal *trim*
//! DFA of the language.  Trim minimal DFAs are canonical up to isomorphism,
//! which [`crate::decide::equivalent`] relies on indirectly.

use crate::dfa::Dfa;
use std::collections::BTreeMap;

/// Returns the minimal trim DFA recognizing the same language as `dfa`.
pub fn minimize(dfa: &Dfa) -> Dfa {
    let alphabet = dfa.used_alphabet();
    let complete = dfa.complete(&alphabet);
    let n = complete.state_count();
    if n == 0 {
        return Dfa::empty_language();
    }

    // Initial partition: accepting vs non-accepting states.
    let mut class_of: Vec<usize> = (0..n)
        .map(|s| if complete.is_accepting(s) { 1 } else { 0 })
        .collect();
    let mut class_count = 2;

    loop {
        // Signature of a state: its class + the classes reached per symbol.
        let mut signatures: BTreeMap<(usize, Vec<usize>), usize> = BTreeMap::new();
        let mut next_class_of = vec![0usize; n];
        let mut next_count = 0usize;
        for state in 0..n {
            let successor_classes: Vec<usize> = alphabet
                .iter()
                .map(|symbol| {
                    complete
                        .step(state, symbol)
                        .map(|t| class_of[t])
                        .unwrap_or(usize::MAX)
                })
                .collect();
            let key = (class_of[state], successor_classes);
            let class = *signatures.entry(key).or_insert_with(|| {
                let c = next_count;
                next_count += 1;
                c
            });
            next_class_of[state] = class;
        }
        if next_count == class_count {
            class_of = next_class_of;
            break;
        }
        class_of = next_class_of;
        class_count = next_count;
    }

    // Build the quotient automaton: one state per refinement class (classes
    // are contiguous 0..class_count by construction of the signature map).
    let mut quotient = Dfa::empty_language();
    while quotient.state_count() < class_count {
        quotient.add_state(false);
    }
    for (state, &class) in class_of.iter().enumerate() {
        if complete.is_accepting(state) {
            quotient.set_accepting(class, true);
        }
    }
    // Transitions: pick any representative per class (classes agree on the
    // target class of every symbol by construction).
    let mut class_representative: BTreeMap<usize, usize> = BTreeMap::new();
    for (state, &class) in class_of.iter().enumerate() {
        class_representative.entry(class).or_insert(state);
    }
    for (&class, &rep) in &class_representative {
        for (symbol, target) in complete.transitions_from(rep) {
            quotient.add_transition(class, symbol, class_of[target]);
        }
    }
    quotient.set_start(class_of[complete.start()]);
    quotient.trim()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::determinize::determinize;
    use crate::nfa::Nfa;
    use crate::regex::Regex;
    use gps_graph::LabelId;

    fn l(i: u32) -> LabelId {
        LabelId::new(i)
    }

    fn minimal_of(regex: &Regex) -> Dfa {
        minimize(&determinize(&Nfa::from_regex(regex)))
    }

    #[test]
    fn minimization_preserves_language() {
        let r = Regex::concat([
            Regex::star(Regex::union([Regex::symbol(l(0)), Regex::symbol(l(1))])),
            Regex::symbol(l(2)),
        ]);
        let big = determinize(&Nfa::from_regex(&r));
        let small = minimize(&big);
        for word in [
            vec![],
            vec![l(2)],
            vec![l(0), l(2)],
            vec![l(1), l(0), l(2)],
            vec![l(2), l(2)],
            vec![l(0)],
        ] {
            assert_eq!(big.accepts(&word), small.accepts(&word), "word {word:?}");
        }
        assert!(small.state_count() <= big.state_count());
    }

    #[test]
    fn known_minimal_sizes() {
        // (a+b)*c — minimal trim DFA: 2 states.
        let r1 = Regex::concat([
            Regex::star(Regex::union([Regex::symbol(l(0)), Regex::symbol(l(1))])),
            Regex::symbol(l(2)),
        ]);
        assert_eq!(minimal_of(&r1).state_count(), 2);
        // a* — 1 state.
        assert_eq!(
            minimal_of(&Regex::star(Regex::symbol(l(0)))).state_count(),
            1
        );
        // a·b — 3 states (trim).
        assert_eq!(minimal_of(&Regex::word(&[l(0), l(1)])).state_count(), 3);
        // ε — 1 accepting state.
        assert_eq!(minimal_of(&Regex::Epsilon).state_count(), 1);
        // ∅ — trim leaves a single rejecting state by convention.
        assert_eq!(minimal_of(&Regex::Empty).state_count(), 1);
    }

    #[test]
    fn equivalent_expressions_minimize_to_same_size() {
        // (a*)* and a* and ε + a·a*
        let a = Regex::symbol(l(0));
        let r1 = Regex::star(Regex::star(a.clone()));
        let r2 = Regex::star(a.clone());
        let r3 = Regex::union([Regex::Epsilon, Regex::plus(a.clone())]);
        let s1 = minimal_of(&r1).state_count();
        let s2 = minimal_of(&r2).state_count();
        let s3 = minimal_of(&r3).state_count();
        assert_eq!(s1, s2);
        assert_eq!(s2, s3);
    }

    #[test]
    fn redundant_states_are_merged() {
        // Hand-built DFA with two equivalent accepting states.
        let mut dfa = Dfa::empty_language();
        let acc1 = dfa.add_state(true);
        let acc2 = dfa.add_state(true);
        dfa.add_transition(0, l(0), acc1);
        dfa.add_transition(0, l(1), acc2);
        // Both accepting states are sinks → equivalent.
        let min = minimize(&dfa);
        assert_eq!(min.state_count(), 2);
        assert!(min.accepts(&[l(0)]));
        assert!(min.accepts(&[l(1)]));
        assert!(!min.accepts(&[l(0), l(0)]));
    }

    #[test]
    fn minimization_removes_unreachable_and_dead_states() {
        let mut dfa = Dfa::empty_language();
        let acc = dfa.add_state(true);
        let dead = dfa.add_state(false);
        let unreachable = dfa.add_state(true);
        dfa.add_transition(0, l(0), acc);
        dfa.add_transition(0, l(1), dead);
        dfa.add_transition(unreachable, l(0), acc);
        let min = minimize(&dfa);
        assert_eq!(min.state_count(), 2);
        assert!(min.accepts(&[l(0)]));
        assert!(!min.accepts(&[l(1)]));
    }

    #[test]
    fn empty_language_minimizes_to_single_state() {
        let min = minimize(&Dfa::empty_language());
        assert_eq!(min.state_count(), 1);
        assert!(!min.accepts(&[]));
    }
}
