//! Boolean operations on DFAs: product, intersection, union, complement and
//! difference.
//!
//! All binary operations are implemented through the reachable product
//! construction.  Operations whose result depends on words *outside* the
//! automata's own transitions (union, complement, difference) require an
//! explicit [`Alphabet`] so the automata can be completed first.

use crate::alphabet::Alphabet;
use crate::dfa::Dfa;
use crate::nfa::StateId;
use std::collections::{BTreeMap, VecDeque};

/// How the accepting sets of the two operands combine in a product.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProductMode {
    /// Accepting iff both operands accept.
    Intersection,
    /// Accepting iff at least one operand accepts.
    Union,
    /// Accepting iff the first accepts and the second does not.
    Difference,
}

/// Reachable product of two DFAs with the given acceptance combination.
///
/// The operands should be complete over a common alphabet when the mode is
/// [`ProductMode::Union`] or [`ProductMode::Difference`]; otherwise words
/// undefined in one operand are silently dropped.  [`union`], [`difference`]
/// and [`complement`] take care of completion for you.
pub fn product(left: &Dfa, right: &Dfa, mode: ProductMode) -> Dfa {
    let mut dfa = Dfa::empty_language();
    let mut ids: BTreeMap<(StateId, StateId), StateId> = BTreeMap::new();
    let start_pair = (left.start(), right.start());
    ids.insert(start_pair, 0);
    dfa.set_accepting(0, combine(left, right, start_pair, mode));

    let mut queue = VecDeque::new();
    queue.push_back(start_pair);
    while let Some(pair) = queue.pop_front() {
        let from = ids[&pair];
        // Iterate over symbols defined in *both* operands at this pair.
        for (symbol, left_target) in left.transitions_from(pair.0) {
            if let Some(right_target) = right.step(pair.1, symbol) {
                let next_pair = (left_target, right_target);
                let to = match ids.get(&next_pair) {
                    Some(&id) => id,
                    None => {
                        let id = dfa.add_state(combine(left, right, next_pair, mode));
                        ids.insert(next_pair, id);
                        queue.push_back(next_pair);
                        id
                    }
                };
                dfa.add_transition(from, symbol, to);
            }
        }
    }
    dfa
}

fn combine(left: &Dfa, right: &Dfa, pair: (StateId, StateId), mode: ProductMode) -> bool {
    let l = left.is_accepting(pair.0);
    let r = right.is_accepting(pair.1);
    match mode {
        ProductMode::Intersection => l && r,
        ProductMode::Union => l || r,
        ProductMode::Difference => l && !r,
    }
}

/// Intersection of two DFAs (no completion needed).
pub fn intersection(left: &Dfa, right: &Dfa) -> Dfa {
    product(left, right, ProductMode::Intersection).trim()
}

/// Union of two DFAs over `alphabet`.
pub fn union(left: &Dfa, right: &Dfa, alphabet: &Alphabet) -> Dfa {
    let l = left.complete(alphabet);
    let r = right.complete(alphabet);
    product(&l, &r, ProductMode::Union).trim()
}

/// Difference `L(left) \ L(right)` over `alphabet`.
pub fn difference(left: &Dfa, right: &Dfa, alphabet: &Alphabet) -> Dfa {
    let l = left.complete(alphabet);
    let r = right.complete(alphabet);
    product(&l, &r, ProductMode::Difference).trim()
}

/// Complement of a DFA with respect to `alphabet`.
pub fn complement(dfa: &Dfa, alphabet: &Alphabet) -> Dfa {
    let mut complete = dfa.complete(alphabet);
    for state in 0..complete.state_count() {
        let accepting = complete.is_accepting(state);
        complete.set_accepting(state, !accepting);
    }
    complete
}

/// Symmetric difference `(L1 \ L2) ∪ (L2 \ L1)` over `alphabet`; empty iff
/// the two languages are equal.
pub fn symmetric_difference(left: &Dfa, right: &Dfa, alphabet: &Alphabet) -> Dfa {
    let l_minus_r = difference(left, right, alphabet);
    let r_minus_l = difference(right, left, alphabet);
    union(&l_minus_r, &r_minus_l, alphabet)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use gps_graph::LabelId;

    fn l(i: u32) -> LabelId {
        LabelId::new(i)
    }

    fn abc_alphabet() -> Alphabet {
        Alphabet::from_labels([l(0), l(1), l(2)])
    }

    fn dfa_of(r: &Regex) -> Dfa {
        Dfa::from_regex(r)
    }

    #[test]
    fn intersection_of_star_languages() {
        // a*(over {a}) ∩ (a+b)* b (over {a,b}) = words of a* ending in b = ∅... actually
        // L1 = a*, L2 = (a+b)*·b ⇒ intersection = ∅ because L1 has no word ending in b.
        let l1 = dfa_of(&Regex::star(Regex::symbol(l(0))));
        let l2 = dfa_of(&Regex::concat([
            Regex::star(Regex::union([Regex::symbol(l(0)), Regex::symbol(l(1))])),
            Regex::symbol(l(1)),
        ]));
        let inter = intersection(&l1, &l2);
        assert!(!inter.accepts(&[]));
        assert!(!inter.accepts(&[l(0), l(1)]));
        assert!(!inter.accepts(&[l(1)]));
        // And a non-empty intersection: (a+b)*·b ∩ b·(a+b)* contains "b".
        let l3 = dfa_of(&Regex::concat([
            Regex::symbol(l(1)),
            Regex::star(Regex::union([Regex::symbol(l(0)), Regex::symbol(l(1))])),
        ]));
        let inter2 = intersection(&l2, &l3);
        assert!(inter2.accepts(&[l(1)]));
        assert!(inter2.accepts(&[l(1), l(0), l(1)]));
        assert!(!inter2.accepts(&[l(0), l(1), l(0)]));
    }

    #[test]
    fn union_covers_both_operands() {
        let alphabet = abc_alphabet();
        let u = union(
            &dfa_of(&Regex::word(&[l(0)])),
            &dfa_of(&Regex::word(&[l(1), l(2)])),
            &alphabet,
        );
        assert!(u.accepts(&[l(0)]));
        assert!(u.accepts(&[l(1), l(2)]));
        assert!(!u.accepts(&[l(1)]));
        assert!(!u.accepts(&[]));
    }

    #[test]
    fn complement_flips_membership() {
        let alphabet = abc_alphabet();
        let a_star = dfa_of(&Regex::star(Regex::symbol(l(0))));
        let comp = complement(&a_star, &alphabet);
        assert!(!comp.accepts(&[]));
        assert!(!comp.accepts(&[l(0), l(0)]));
        assert!(comp.accepts(&[l(1)]));
        assert!(comp.accepts(&[l(0), l(2)]));
        // Double complement restores the language.
        let back = complement(&comp, &alphabet);
        assert!(back.accepts(&[]));
        assert!(back.accepts(&[l(0)]));
        assert!(!back.accepts(&[l(1)]));
    }

    #[test]
    fn difference_removes_the_second_language() {
        let alphabet = abc_alphabet();
        // (a+b)* \ a* = words over {a,b} containing at least one b.
        let all = dfa_of(&Regex::star(Regex::union([
            Regex::symbol(l(0)),
            Regex::symbol(l(1)),
        ])));
        let a_star = dfa_of(&Regex::star(Regex::symbol(l(0))));
        let diff = difference(&all, &a_star, &alphabet);
        assert!(!diff.accepts(&[]));
        assert!(!diff.accepts(&[l(0), l(0)]));
        assert!(diff.accepts(&[l(1)]));
        assert!(diff.accepts(&[l(0), l(1), l(0)]));
    }

    #[test]
    fn symmetric_difference_detects_equality() {
        let alphabet = abc_alphabet();
        let r1 = dfa_of(&Regex::star(Regex::star(Regex::symbol(l(0)))));
        let r2 = dfa_of(&Regex::star(Regex::symbol(l(0))));
        let sym = symmetric_difference(&r1, &r2, &alphabet);
        // Equal languages → empty symmetric difference (no accepting state
        // reachable after trim).
        assert!(sym.accepting_states().is_empty());
        let r3 = dfa_of(&Regex::plus(Regex::symbol(l(0))));
        let sym2 = symmetric_difference(&r2, &r3, &alphabet);
        assert!(sym2.accepts(&[]), "ε distinguishes a* from a+");
    }

    #[test]
    fn product_mode_combinations() {
        let t = dfa_of(&Regex::Epsilon);
        let f = dfa_of(&Regex::Empty);
        assert!(product(&t, &t, ProductMode::Intersection).accepts(&[]));
        assert!(!product(&t, &f, ProductMode::Intersection).accepts(&[]));
        assert!(product(&t, &f, ProductMode::Union).accepts(&[]));
        assert!(product(&t, &f, ProductMode::Difference).accepts(&[]));
        assert!(!product(&f, &t, ProductMode::Difference).accepts(&[]));
    }
}
