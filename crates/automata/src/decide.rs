//! Decision procedures on automata and expressions: emptiness, membership,
//! finiteness, equivalence and inclusion.

use crate::alphabet::Alphabet;
use crate::dfa::Dfa;
use crate::ops::{difference, symmetric_difference};
use crate::regex::Regex;
use gps_graph::LabelId;
use std::collections::VecDeque;

/// Returns `true` when the DFA recognizes the empty language.
pub fn is_empty(dfa: &Dfa) -> bool {
    let reachable = dfa.reachable_states();
    !reachable.iter().any(|&s| dfa.is_accepting(s))
}

/// Returns `true` when the DFA accepts `word` (same as [`Dfa::accepts`],
/// provided for discoverability next to the other decisions).
pub fn accepts(dfa: &Dfa, word: &[LabelId]) -> bool {
    dfa.accepts(word)
}

/// Returns `true` when the two DFAs recognize the same language over
/// `alphabet`.
pub fn equivalent(left: &Dfa, right: &Dfa, alphabet: &Alphabet) -> bool {
    is_empty(&symmetric_difference(left, right, alphabet))
}

/// Returns `true` when `L(left) ⊆ L(right)` over `alphabet`.
pub fn included(left: &Dfa, right: &Dfa, alphabet: &Alphabet) -> bool {
    is_empty(&difference(left, right, alphabet))
}

/// Returns `true` when the two regular expressions denote the same language.
/// The alphabet is the union of the symbols occurring in either expression.
pub fn regex_equivalent(left: &Regex, right: &Regex) -> bool {
    let alphabet = left.alphabet().union(&right.alphabet());
    equivalent(&Dfa::from_regex(left), &Dfa::from_regex(right), &alphabet)
}

/// Returns the length of a shortest accepted word, or `None` when the
/// language is empty.  Useful to produce small witnesses and in tests.
pub fn shortest_accepted_word(dfa: &Dfa) -> Option<Vec<LabelId>> {
    // BFS over states, remembering the word that first reached each state.
    let mut visited = vec![false; dfa.state_count()];
    let mut queue: VecDeque<(usize, Vec<LabelId>)> = VecDeque::new();
    visited[dfa.start()] = true;
    queue.push_back((dfa.start(), Vec::new()));
    while let Some((state, word)) = queue.pop_front() {
        if dfa.is_accepting(state) {
            return Some(word);
        }
        for (symbol, target) in dfa.transitions_from(state) {
            if !visited[target] {
                visited[target] = true;
                let mut next = word.clone();
                next.push(symbol);
                queue.push_back((target, next));
            }
        }
    }
    None
}

/// Returns `true` when the language of the DFA is finite (no cycle lies on a
/// path from the start state to an accepting state).
pub fn is_finite(dfa: &Dfa) -> bool {
    // Restrict to the trim part, then look for any cycle.
    let trim = dfa.trim();
    if is_empty(&trim) {
        return true;
    }
    // Kahn-style cycle detection on the trim automaton.
    let n = trim.state_count();
    let mut indegree = vec![0usize; n];
    for state in 0..n {
        for (_, target) in trim.transitions_from(state) {
            indegree[target] += 1;
        }
    }
    let mut queue: VecDeque<usize> = (0..n).filter(|&s| indegree[s] == 0).collect();
    let mut removed = 0usize;
    while let Some(state) = queue.pop_front() {
        removed += 1;
        for (_, target) in trim.transitions_from(state) {
            indegree[target] -= 1;
            if indegree[target] == 0 {
                queue.push_back(target);
            }
        }
    }
    removed == n
}

/// Enumerates all accepted words of length at most `max_length`, in
/// length-then-lexicographic order.  Intended for testing and for the small
/// graphs of the interactive demo; the output size is exponential in
/// `max_length` for expressive languages.
pub fn accepted_words_up_to(dfa: &Dfa, max_length: usize) -> Vec<Vec<LabelId>> {
    let mut result = Vec::new();
    let mut frontier: Vec<(usize, Vec<LabelId>)> = vec![(dfa.start(), Vec::new())];
    if dfa.is_accepting(dfa.start()) {
        result.push(Vec::new());
    }
    for _ in 0..max_length {
        let mut next_frontier = Vec::new();
        for (state, word) in &frontier {
            for (symbol, target) in dfa.transitions_from(*state) {
                let mut next_word = word.clone();
                next_word.push(symbol);
                if dfa.is_accepting(target) {
                    result.push(next_word.clone());
                }
                next_frontier.push((target, next_word));
            }
        }
        if next_frontier.is_empty() {
            break;
        }
        frontier = next_frontier;
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LabelId {
        LabelId::new(i)
    }

    fn ab_alphabet() -> Alphabet {
        Alphabet::from_labels([l(0), l(1)])
    }

    #[test]
    fn emptiness() {
        assert!(is_empty(&Dfa::from_regex(&Regex::Empty)));
        assert!(!is_empty(&Dfa::from_regex(&Regex::Epsilon)));
        assert!(!is_empty(&Dfa::from_regex(&Regex::symbol(l(0)))));
        // An automaton whose accepting state is unreachable is empty.
        let mut dfa = Dfa::empty_language();
        dfa.add_state(true);
        assert!(is_empty(&dfa));
    }

    #[test]
    fn equivalence_of_algebraically_equal_expressions() {
        let a = Regex::symbol(l(0));
        let b = Regex::symbol(l(1));
        assert!(regex_equivalent(
            &Regex::star(Regex::union([a.clone(), b.clone()])),
            &Regex::star(Regex::union([b.clone(), a.clone()]))
        ));
        assert!(regex_equivalent(
            &Regex::star(Regex::star(a.clone())),
            &Regex::star(a.clone())
        ));
        assert!(!regex_equivalent(
            &Regex::plus(a.clone()),
            &Regex::star(a.clone())
        ));
        // (a+b)* ≠ (a·b)*
        assert!(!regex_equivalent(
            &Regex::star(Regex::union([a.clone(), b.clone()])),
            &Regex::star(Regex::concat([a.clone(), b.clone()]))
        ));
    }

    #[test]
    fn inclusion_is_a_partial_order() {
        let alphabet = ab_alphabet();
        let a_plus = Dfa::from_regex(&Regex::plus(Regex::symbol(l(0))));
        let a_star = Dfa::from_regex(&Regex::star(Regex::symbol(l(0))));
        let all = Dfa::from_regex(&Regex::star(Regex::union([
            Regex::symbol(l(0)),
            Regex::symbol(l(1)),
        ])));
        assert!(included(&a_plus, &a_star, &alphabet));
        assert!(!included(&a_star, &a_plus, &alphabet));
        assert!(included(&a_star, &all, &alphabet));
        assert!(included(&a_star, &a_star, &alphabet), "reflexive");
    }

    #[test]
    fn shortest_word_is_found_by_bfs() {
        // (a+b)*·b — shortest accepted word is "b".
        let dfa = Dfa::from_regex(&Regex::concat([
            Regex::star(Regex::union([Regex::symbol(l(0)), Regex::symbol(l(1))])),
            Regex::symbol(l(1)),
        ]));
        assert_eq!(shortest_accepted_word(&dfa), Some(vec![l(1)]));
        assert_eq!(
            shortest_accepted_word(&Dfa::from_regex(&Regex::Empty)),
            None
        );
        assert_eq!(
            shortest_accepted_word(&Dfa::from_regex(&Regex::Epsilon)),
            Some(vec![])
        );
    }

    #[test]
    fn finiteness() {
        assert!(is_finite(&Dfa::from_regex(&Regex::word(&[l(0), l(1)]))));
        assert!(is_finite(&Dfa::from_regex(&Regex::Empty)));
        assert!(is_finite(&Dfa::from_regex(&Regex::Epsilon)));
        assert!(!is_finite(&Dfa::from_regex(&Regex::star(Regex::symbol(
            l(0)
        )))));
        assert!(!is_finite(&Dfa::from_regex(&Regex::concat([
            Regex::plus(Regex::symbol(l(0))),
            Regex::symbol(l(1))
        ]))));
        // Cycle not on an accepting path does not make the language infinite.
        let mut dfa = Dfa::from_regex(&Regex::word(&[l(0)]));
        let loop_state = dfa.add_state(false);
        dfa.add_transition(loop_state, l(1), loop_state);
        dfa.add_transition(0, l(1), loop_state);
        assert!(is_finite(&dfa));
    }

    #[test]
    fn accepted_word_enumeration() {
        let dfa = Dfa::from_regex(&Regex::star(Regex::symbol(l(0))));
        let words = accepted_words_up_to(&dfa, 3);
        assert_eq!(
            words,
            vec![vec![], vec![l(0)], vec![l(0); 2], vec![l(0); 3]]
        );
        let ab = Dfa::from_regex(&Regex::union([
            Regex::word(&[l(0)]),
            Regex::word(&[l(1), l(1)]),
        ]));
        let words = accepted_words_up_to(&ab, 2);
        assert_eq!(words, vec![vec![l(0)], vec![l(1), l(1)]]);
        assert!(accepted_words_up_to(&Dfa::from_regex(&Regex::Empty), 5).is_empty());
    }

    #[test]
    fn accepts_helper_matches_dfa_method() {
        let dfa = Dfa::from_regex(&Regex::symbol(l(0)));
        assert!(accepts(&dfa, &[l(0)]));
        assert!(!accepts(&dfa, &[l(1)]));
    }
}
