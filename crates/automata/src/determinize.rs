//! Subset construction: NFA → DFA.
//!
//! The construction only creates subsets reachable from the ε-closure of the
//! NFA start state, so the output is reachable by construction (but not
//! necessarily minimal or trim — see [`crate::minimize`]).

use crate::dfa::Dfa;
use crate::nfa::{Nfa, StateId};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Determinizes `nfa` by the subset construction.
pub fn determinize(nfa: &Nfa) -> Dfa {
    let symbols: Vec<_> = nfa.symbols().into_iter().collect();

    let start_subset = nfa.epsilon_closure(&BTreeSet::from([nfa.start()]));
    let mut subset_ids: BTreeMap<BTreeSet<StateId>, StateId> = BTreeMap::new();
    let mut dfa = Dfa::empty_language();
    // Reuse state 0 of the fresh DFA as the start subset.
    subset_ids.insert(start_subset.clone(), 0);
    dfa.set_accepting(0, start_subset.iter().any(|&s| nfa.is_accepting(s)));

    let mut queue = VecDeque::new();
    queue.push_back(start_subset);

    while let Some(subset) = queue.pop_front() {
        let from_id = subset_ids[&subset];
        for &symbol in &symbols {
            let moved = nfa.step(&subset, symbol);
            if moved.is_empty() {
                continue;
            }
            let closure = nfa.epsilon_closure(&moved);
            let to_id = match subset_ids.get(&closure) {
                Some(&id) => id,
                None => {
                    let accepting = closure.iter().any(|&s| nfa.is_accepting(s));
                    let id = dfa.add_state(accepting);
                    subset_ids.insert(closure.clone(), id);
                    queue.push_back(closure);
                    id
                }
            };
            dfa.add_transition(from_id, symbol, to_id);
        }
    }
    dfa
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use gps_graph::LabelId;

    fn l(i: u32) -> LabelId {
        LabelId::new(i)
    }

    #[test]
    fn determinized_automaton_preserves_language() {
        let r = Regex::concat([
            Regex::star(Regex::union([Regex::symbol(l(0)), Regex::symbol(l(1))])),
            Regex::symbol(l(2)),
        ]);
        let nfa = Nfa::from_regex(&r);
        let dfa = determinize(&nfa);
        for word in [
            vec![l(2)],
            vec![l(0), l(2)],
            vec![l(1), l(1), l(0), l(2)],
            vec![],
            vec![l(0)],
            vec![l(2), l(0)],
        ] {
            assert_eq!(nfa.accepts(&word), dfa.accepts(&word), "word {word:?}");
        }
    }

    #[test]
    fn empty_language_determinizes_to_rejecting_automaton() {
        let dfa = determinize(&Nfa::from_regex(&Regex::Empty));
        assert!(!dfa.accepts(&[]));
        assert!(!dfa.accepts(&[l(0)]));
        assert_eq!(dfa.state_count(), 1);
    }

    #[test]
    fn epsilon_language_start_state_is_accepting() {
        let dfa = determinize(&Nfa::from_regex(&Regex::Epsilon));
        assert!(dfa.is_accepting(dfa.start()));
        assert!(dfa.accepts(&[]));
        assert!(!dfa.accepts(&[l(0)]));
    }

    #[test]
    fn result_is_deterministic_and_reachable() {
        let r = Regex::union([
            Regex::word(&[l(0), l(1)]),
            Regex::word(&[l(0), l(2)]),
            Regex::star(Regex::symbol(l(0))),
        ]);
        let dfa = determinize(&Nfa::from_regex(&r));
        assert_eq!(dfa.reachable_states().len(), dfa.state_count());
        // Determinism is guaranteed by the BTreeMap representation; check a
        // couple of memberships anyway.
        assert!(dfa.accepts(&[l(0), l(1)]));
        assert!(dfa.accepts(&[l(0), l(0)]));
        assert!(dfa.accepts(&[]));
        assert!(!dfa.accepts(&[l(1)]));
    }

    #[test]
    fn exponential_blowup_is_possible_but_bounded_here() {
        // (a+b)*·a·(a+b): the minimal DFA has 4 states; subset construction
        // may produce a few more but stays small for this size.
        let ab = Regex::union([Regex::symbol(l(0)), Regex::symbol(l(1))]);
        let r = Regex::concat([Regex::star(ab.clone()), Regex::symbol(l(0)), ab.clone()]);
        let dfa = determinize(&Nfa::from_regex(&r));
        assert!(dfa.state_count() >= 4);
        assert!(dfa.accepts(&[l(0), l(1)]));
        assert!(dfa.accepts(&[l(1), l(0), l(0)]));
        assert!(!dfa.accepts(&[l(1), l(1)]));
    }
}
