//! The finite alphabet of edge labels an automaton is defined over.
//!
//! An [`Alphabet`] is an ordered set of [`LabelId`]s.  Completion and
//! complementation of automata are only meaningful relative to an explicit
//! alphabet, which is why automata operations take one as an argument rather
//! than inferring it from the symbols that happen to occur in the automaton.

use gps_graph::{LabelId, LabelInterner};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;

/// An ordered, duplicate-free set of labels.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Alphabet {
    symbols: Vec<LabelId>,
}

impl Alphabet {
    /// Creates an empty alphabet.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds an alphabet from any iterator of labels, deduplicating and
    /// sorting them.
    pub fn from_labels(labels: impl IntoIterator<Item = LabelId>) -> Self {
        let set: BTreeSet<LabelId> = labels.into_iter().collect();
        Self {
            symbols: set.into_iter().collect(),
        }
    }

    /// Builds the alphabet of every label known to an interner.
    pub fn from_interner(interner: &LabelInterner) -> Self {
        Self::from_labels(interner.ids())
    }

    /// Adds a symbol (keeping the set sorted); returns `true` if it was new.
    pub fn insert(&mut self, label: LabelId) -> bool {
        match self.symbols.binary_search(&label) {
            Ok(_) => false,
            Err(pos) => {
                self.symbols.insert(pos, label);
                true
            }
        }
    }

    /// Returns `true` if the alphabet contains `label`.
    pub fn contains(&self, label: LabelId) -> bool {
        self.symbols.binary_search(&label).is_ok()
    }

    /// The symbols in ascending order.
    pub fn symbols(&self) -> &[LabelId] {
        &self.symbols
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` when the alphabet is empty.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Iterates over the symbols.
    pub fn iter(&self) -> impl Iterator<Item = LabelId> + '_ {
        self.symbols.iter().copied()
    }

    /// Union of two alphabets.
    pub fn union(&self, other: &Alphabet) -> Alphabet {
        Alphabet::from_labels(self.iter().chain(other.iter()))
    }
}

impl FromIterator<LabelId> for Alphabet {
    fn from_iter<T: IntoIterator<Item = LabelId>>(iter: T) -> Self {
        Self::from_labels(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LabelId {
        LabelId::new(i)
    }

    #[test]
    fn from_labels_sorts_and_dedups() {
        let a = Alphabet::from_labels(vec![l(3), l(1), l(3), l(0)]);
        assert_eq!(a.symbols(), &[l(0), l(1), l(3)]);
        assert_eq!(a.len(), 3);
    }

    #[test]
    fn insert_keeps_order_and_reports_novelty() {
        let mut a = Alphabet::new();
        assert!(a.is_empty());
        assert!(a.insert(l(2)));
        assert!(a.insert(l(0)));
        assert!(!a.insert(l(2)));
        assert_eq!(a.symbols(), &[l(0), l(2)]);
    }

    #[test]
    fn contains_and_iter() {
        let a: Alphabet = vec![l(5), l(7)].into_iter().collect();
        assert!(a.contains(l(5)));
        assert!(!a.contains(l(6)));
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![l(5), l(7)]);
    }

    #[test]
    fn union_merges() {
        let a = Alphabet::from_labels(vec![l(1), l(2)]);
        let b = Alphabet::from_labels(vec![l(2), l(3)]);
        assert_eq!(a.union(&b).symbols(), &[l(1), l(2), l(3)]);
    }

    #[test]
    fn from_interner_covers_all_labels() {
        let mut interner = LabelInterner::new();
        interner.intern("tram");
        interner.intern("bus");
        let a = Alphabet::from_interner(&interner);
        assert_eq!(a.len(), 2);
        assert!(a.contains(interner.get("bus").unwrap()));
    }
}
