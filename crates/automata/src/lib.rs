//! # gps-automata — regular expressions and finite automata over edge labels
//!
//! Path queries in GPS are regular expressions over the graph's edge-label
//! alphabet: a node is selected when one of its outgoing paths spells a word
//! of the expression's language.  This crate provides the complete formal
//! machinery the query engine and the learner need:
//!
//! * [`Regex`] — the expression AST with smart constructors and algebraic
//!   simplification, plus a [`parser`] for the paper's concrete syntax
//!   (`(tram+bus)*·cinema`) and a [`printer`];
//! * [`Nfa`] — nondeterministic finite automata with ε-transitions, built
//!   from expressions by Thompson's construction;
//! * [`Dfa`] — deterministic automata obtained by subset construction
//!   ([`determinize`]) and reduced by partition refinement ([`minimize`]);
//! * [`ops`] — product, union, intersection, complement and difference;
//! * [`decide`] — emptiness, membership, equivalence and language inclusion;
//! * [`state_elim`] — conversion of automata back to regular expressions,
//!   used to show the learned query to the user;
//! * [`pta`] — the prefix-tree acceptor of a finite sample, the starting
//!   point of the learning algorithm's state-merging generalization.
//!
//! ## Example
//!
//! ```
//! use gps_graph::LabelInterner;
//! use gps_automata::{parser, Dfa};
//!
//! let mut labels = LabelInterner::new();
//! let tram = labels.intern("tram");
//! let bus = labels.intern("bus");
//! let cinema = labels.intern("cinema");
//!
//! // The motivating query of the paper.
//! let q = parser::parse("(tram+bus)*.cinema", &labels).unwrap();
//! let dfa = Dfa::from_regex(&q);
//! assert!(dfa.accepts(&[cinema]));
//! assert!(dfa.accepts(&[bus, tram, cinema]));
//! assert!(!dfa.accepts(&[bus, tram]));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alphabet;
pub mod decide;
pub mod determinize;
pub mod dfa;
pub mod dot;
pub mod minimize;
pub mod nfa;
pub mod ops;
pub mod parser;
pub mod printer;
pub mod pta;
pub mod regex;
pub mod state_elim;

pub use alphabet::Alphabet;
pub use dfa::Dfa;
pub use nfa::Nfa;
pub use regex::Regex;
