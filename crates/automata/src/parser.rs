//! Parser for the paper's concrete regular-expression syntax.
//!
//! The demo paper writes queries such as `(tram + bus)* · cinema`.  The
//! grammar accepted here:
//!
//! ```text
//! union  := concat ('+' concat)*
//! concat := factor (('.' | '·')? factor)*      -- '.'/'·' optional
//! factor := atom ('*' | '?')*
//! atom   := label | '(' union ')' | 'ε' | 'eps' | '∅' | 'empty'
//! label  := [A-Za-z_][A-Za-z0-9_-]*
//! ```
//!
//! Label names are resolved against a [`LabelInterner`]; referencing a label
//! that the graph does not know is an error (a query can only be evaluated
//! over the graph's alphabet).

use crate::regex::Regex;
use gps_graph::LabelInterner;
use std::fmt;

/// Errors produced by [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseError {
    /// The input ended unexpectedly.
    UnexpectedEnd,
    /// An unexpected character was found at the given byte offset.
    UnexpectedChar {
        /// Byte offset in the input.
        offset: usize,
        /// The character found.
        found: char,
    },
    /// A closing parenthesis was expected at the given byte offset.
    ExpectedClosingParen {
        /// Byte offset in the input.
        offset: usize,
    },
    /// A label name does not exist in the interner.
    UnknownLabel {
        /// The unresolved name.
        name: String,
    },
    /// Trailing input after a complete expression.
    TrailingInput {
        /// Byte offset of the first unconsumed token.
        offset: usize,
    },
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::UnexpectedEnd => write!(f, "unexpected end of expression"),
            ParseError::UnexpectedChar { offset, found } => {
                write!(f, "unexpected character {found:?} at offset {offset}")
            }
            ParseError::ExpectedClosingParen { offset } => {
                write!(f, "expected ')' at offset {offset}")
            }
            ParseError::UnknownLabel { name } => {
                write!(f, "unknown label {name:?} (not part of the graph alphabet)")
            }
            ParseError::TrailingInput { offset } => {
                write!(f, "trailing input starting at offset {offset}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Plus,
    Dot,
    Star,
    Question,
    LParen,
    RParen,
    Epsilon,
    EmptySet,
}

fn tokenize(input: &str) -> Result<Vec<(usize, Token)>, ParseError> {
    let mut tokens = Vec::new();
    let mut chars = input.char_indices().peekable();
    while let Some(&(offset, c)) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '+' => {
                chars.next();
                tokens.push((offset, Token::Plus));
            }
            '.' | '·' => {
                chars.next();
                tokens.push((offset, Token::Dot));
            }
            '*' => {
                chars.next();
                tokens.push((offset, Token::Star));
            }
            '?' => {
                chars.next();
                tokens.push((offset, Token::Question));
            }
            '(' => {
                chars.next();
                tokens.push((offset, Token::LParen));
            }
            ')' => {
                chars.next();
                tokens.push((offset, Token::RParen));
            }
            'ε' => {
                chars.next();
                tokens.push((offset, Token::Epsilon));
            }
            '∅' => {
                chars.next();
                tokens.push((offset, Token::EmptySet));
            }
            c if c.is_alphabetic() || c == '_' => {
                let mut name = String::new();
                while let Some(&(_, c)) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' || c == '-' {
                        name.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let token = match name.as_str() {
                    "eps" | "epsilon" => Token::Epsilon,
                    "empty" => Token::EmptySet,
                    _ => Token::Ident(name),
                };
                tokens.push((offset, token));
            }
            other => {
                return Err(ParseError::UnexpectedChar {
                    offset,
                    found: other,
                })
            }
        }
    }
    Ok(tokens)
}

struct Parser<'a> {
    tokens: Vec<(usize, Token)>,
    pos: usize,
    /// Byte length of the input, reported as the offset at end-of-input.
    end: usize,
    labels: &'a LabelInterner,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn peek_offset(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map(|&(o, _)| o)
            .unwrap_or(self.end)
    }

    fn advance(&mut self) -> Option<Token> {
        let token = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if token.is_some() {
            self.pos += 1;
        }
        token
    }

    fn parse_union(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.parse_concat()?];
        while matches!(self.peek(), Some(Token::Plus)) {
            self.advance();
            parts.push(self.parse_concat()?);
        }
        Ok(Regex::union(parts))
    }

    fn parse_concat(&mut self) -> Result<Regex, ParseError> {
        let mut parts = vec![self.parse_factor()?];
        loop {
            match self.peek() {
                Some(Token::Dot) => {
                    self.advance();
                    parts.push(self.parse_factor()?);
                }
                // Implicit concatenation: the next token starts an atom.
                Some(Token::Ident(_))
                | Some(Token::LParen)
                | Some(Token::Epsilon)
                | Some(Token::EmptySet) => {
                    parts.push(self.parse_factor()?);
                }
                _ => break,
            }
        }
        Ok(Regex::concat(parts))
    }

    fn parse_factor(&mut self) -> Result<Regex, ParseError> {
        let mut atom = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.advance();
                    atom = Regex::star(atom);
                }
                Some(Token::Question) => {
                    self.advance();
                    atom = Regex::optional(atom);
                }
                _ => break,
            }
        }
        Ok(atom)
    }

    fn parse_atom(&mut self) -> Result<Regex, ParseError> {
        match self.advance() {
            Some(Token::Ident(name)) => {
                let label = self
                    .labels
                    .get(&name)
                    .ok_or(ParseError::UnknownLabel { name })?;
                Ok(Regex::symbol(label))
            }
            Some(Token::Epsilon) => Ok(Regex::Epsilon),
            Some(Token::EmptySet) => Ok(Regex::Empty),
            Some(Token::LParen) => {
                let inner = self.parse_union()?;
                match self.advance() {
                    Some(Token::RParen) => Ok(inner),
                    _ => Err(ParseError::ExpectedClosingParen {
                        offset: self.peek_offset(),
                    }),
                }
            }
            Some(_) => Err(ParseError::UnexpectedChar {
                offset: self.peek_offset(),
                found: '?',
            }),
            None => Err(ParseError::UnexpectedEnd),
        }
    }
}

/// Parses an expression, resolving label names against `labels`.
pub fn parse(input: &str, labels: &LabelInterner) -> Result<Regex, ParseError> {
    let tokens = tokenize(input)?;
    let mut parser = Parser {
        tokens,
        pos: 0,
        end: input.len(),
        labels,
    };
    let regex = parser.parse_union()?;
    if parser.pos != parser.tokens.len() {
        return Err(ParseError::TrailingInput {
            offset: parser.peek_offset(),
        });
    }
    Ok(regex)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alphabet() -> LabelInterner {
        let mut labels = LabelInterner::new();
        labels.intern("tram");
        labels.intern("bus");
        labels.intern("cinema");
        labels.intern("restaurant");
        labels
    }

    #[test]
    fn parses_the_motivating_query() {
        let labels = alphabet();
        let tram = labels.get("tram").unwrap();
        let bus = labels.get("bus").unwrap();
        let cinema = labels.get("cinema").unwrap();
        for syntax in [
            "(tram+bus)*.cinema",
            "(tram + bus)* · cinema",
            "( tram + bus ) * cinema",
        ] {
            let q = parse(syntax, &labels).unwrap();
            let expected = Regex::concat([
                Regex::star(Regex::union([Regex::symbol(tram), Regex::symbol(bus)])),
                Regex::symbol(cinema),
            ]);
            assert_eq!(q, expected, "syntax: {syntax}");
        }
    }

    #[test]
    fn parses_single_symbols_and_words() {
        let labels = alphabet();
        let bus = labels.get("bus").unwrap();
        let cinema = labels.get("cinema").unwrap();
        assert_eq!(parse("bus", &labels).unwrap(), Regex::symbol(bus));
        assert_eq!(
            parse("bus.cinema", &labels).unwrap(),
            Regex::word(&[bus, cinema])
        );
        assert_eq!(
            parse("bus cinema", &labels).unwrap(),
            Regex::word(&[bus, cinema]),
            "implicit concatenation"
        );
    }

    #[test]
    fn parses_epsilon_and_empty() {
        let labels = alphabet();
        assert_eq!(parse("ε", &labels).unwrap(), Regex::Epsilon);
        assert_eq!(parse("eps", &labels).unwrap(), Regex::Epsilon);
        assert_eq!(parse("∅", &labels).unwrap(), Regex::Empty);
        assert_eq!(parse("empty", &labels).unwrap(), Regex::Empty);
        assert_eq!(
            parse("bus + ∅", &labels).unwrap(),
            parse("bus", &labels).unwrap()
        );
    }

    #[test]
    fn optional_and_nested_stars() {
        let labels = alphabet();
        let bus = labels.get("bus").unwrap();
        let q = parse("bus?", &labels).unwrap();
        assert!(q.nullable());
        let q2 = parse("(bus*)*", &labels).unwrap();
        assert_eq!(q2, Regex::star(Regex::symbol(bus)));
    }

    #[test]
    fn unknown_label_is_rejected() {
        let labels = alphabet();
        let err = parse("spaceship", &labels).unwrap_err();
        assert_eq!(
            err,
            ParseError::UnknownLabel {
                name: "spaceship".to_string()
            }
        );
        assert!(err.to_string().contains("spaceship"));
    }

    #[test]
    fn syntax_errors_are_reported() {
        let labels = alphabet();
        assert!(matches!(
            parse("(bus", &labels).unwrap_err(),
            ParseError::ExpectedClosingParen { .. }
        ));
        assert!(matches!(
            parse("bus)", &labels).unwrap_err(),
            ParseError::TrailingInput { .. }
        ));
        assert!(matches!(
            parse("", &labels).unwrap_err(),
            ParseError::UnexpectedEnd
        ));
        assert!(matches!(
            parse("bus & tram", &labels).unwrap_err(),
            ParseError::UnexpectedChar { .. }
        ));
        assert!(matches!(
            parse("+bus", &labels).unwrap_err(),
            ParseError::UnexpectedChar { .. } | ParseError::UnexpectedEnd
        ));
    }

    #[test]
    fn star_binds_tighter_than_concat_and_union() {
        let labels = alphabet();
        let tram = labels.get("tram").unwrap();
        let bus = labels.get("bus").unwrap();
        // tram+bus* == tram + (bus*)
        let q = parse("tram+bus*", &labels).unwrap();
        assert_eq!(
            q,
            Regex::union([Regex::symbol(tram), Regex::star(Regex::symbol(bus))])
        );
        // tram.bus* == tram.(bus*)
        let q2 = parse("tram.bus*", &labels).unwrap();
        assert_eq!(
            q2,
            Regex::concat([Regex::symbol(tram), Regex::star(Regex::symbol(bus))])
        );
    }
}
