//! Nondeterministic finite automata with ε-transitions and Thompson's
//! construction from regular expressions.

use crate::regex::Regex;
use gps_graph::LabelId;
use std::collections::BTreeSet;

/// Identifier of an automaton state (dense index).
pub type StateId = usize;

/// An NFA with ε-transitions.
///
/// Transitions are stored per state as `(symbol, target)` pairs where
/// `symbol == None` denotes an ε-transition.  There is a single start state;
/// any number of states may be accepting.
#[derive(Debug, Clone, Default)]
pub struct Nfa {
    transitions: Vec<Vec<(Option<LabelId>, StateId)>>,
    start: StateId,
    accepting: Vec<bool>,
}

impl Nfa {
    /// Creates an NFA with a single non-accepting start state and no
    /// transitions (recognizing the empty language).
    pub fn empty_language() -> Self {
        Self {
            transitions: vec![Vec::new()],
            start: 0,
            accepting: vec![false],
        }
    }

    /// Adds a fresh state; returns its identifier.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        let id = self.transitions.len();
        self.transitions.push(Vec::new());
        self.accepting.push(accepting);
        id
    }

    /// Adds a transition.  `symbol == None` is an ε-transition.
    pub fn add_transition(&mut self, from: StateId, symbol: Option<LabelId>, to: StateId) {
        self.transitions[from].push((symbol, to));
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Sets the start state.
    pub fn set_start(&mut self, state: StateId) {
        assert!(state < self.state_count());
        self.start = state;
    }

    /// Returns `true` if `state` is accepting.
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state]
    }

    /// Marks a state accepting or not.
    pub fn set_accepting(&mut self, state: StateId, accepting: bool) {
        self.accepting[state] = accepting;
    }

    /// Transitions leaving `state`.
    pub fn transitions_from(&self, state: StateId) -> &[(Option<LabelId>, StateId)] {
        &self.transitions[state]
    }

    /// All symbols (non-ε) used on transitions.
    pub fn symbols(&self) -> BTreeSet<LabelId> {
        self.transitions
            .iter()
            .flatten()
            .filter_map(|&(s, _)| s)
            .collect()
    }

    /// ε-closure of a set of states.
    pub fn epsilon_closure(&self, states: &BTreeSet<StateId>) -> BTreeSet<StateId> {
        let mut closure = states.clone();
        let mut stack: Vec<StateId> = states.iter().copied().collect();
        while let Some(state) = stack.pop() {
            for &(symbol, target) in &self.transitions[state] {
                if symbol.is_none() && closure.insert(target) {
                    stack.push(target);
                }
            }
        }
        closure
    }

    /// States reachable from `states` by one `symbol` transition (before
    /// ε-closure).
    pub fn step(&self, states: &BTreeSet<StateId>, symbol: LabelId) -> BTreeSet<StateId> {
        let mut next = BTreeSet::new();
        for &state in states {
            for &(s, target) in &self.transitions[state] {
                if s == Some(symbol) {
                    next.insert(target);
                }
            }
        }
        next
    }

    /// Returns `true` if the NFA accepts `word`.
    pub fn accepts(&self, word: &[LabelId]) -> bool {
        let mut current = self.epsilon_closure(&BTreeSet::from([self.start]));
        for &symbol in word {
            let stepped = self.step(&current, symbol);
            current = self.epsilon_closure(&stepped);
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|&s| self.accepting[s])
    }

    /// Thompson's construction: builds an NFA recognizing exactly the
    /// language of `regex`.  The resulting automaton has a single start state
    /// and a single accepting state.
    pub fn from_regex(regex: &Regex) -> Self {
        let mut nfa = Nfa {
            transitions: Vec::new(),
            start: 0,
            accepting: Vec::new(),
        };
        let (start, accept) = nfa.build(regex);
        nfa.start = start;
        nfa.set_accepting(accept, true);
        nfa
    }

    /// Recursively builds the fragment for `regex`; returns `(start, accept)`
    /// states of the fragment.  No state inside the fragment is marked
    /// accepting — the caller decides.
    fn build(&mut self, regex: &Regex) -> (StateId, StateId) {
        match regex {
            Regex::Empty => {
                let start = self.add_state(false);
                let accept = self.add_state(false);
                (start, accept)
            }
            Regex::Epsilon => {
                let start = self.add_state(false);
                let accept = self.add_state(false);
                self.add_transition(start, None, accept);
                (start, accept)
            }
            Regex::Symbol(label) => {
                let start = self.add_state(false);
                let accept = self.add_state(false);
                self.add_transition(start, Some(*label), accept);
                (start, accept)
            }
            Regex::Concat(parts) => {
                let mut iter = parts.iter();
                let first = iter.next().expect("concat has at least two parts");
                let (start, mut accept) = self.build(first);
                for part in iter {
                    let (next_start, next_accept) = self.build(part);
                    self.add_transition(accept, None, next_start);
                    accept = next_accept;
                }
                (start, accept)
            }
            Regex::Union(parts) => {
                let start = self.add_state(false);
                let accept = self.add_state(false);
                for part in parts {
                    let (s, a) = self.build(part);
                    self.add_transition(start, None, s);
                    self.add_transition(a, None, accept);
                }
                (start, accept)
            }
            Regex::Star(inner) => {
                let start = self.add_state(false);
                let accept = self.add_state(false);
                let (s, a) = self.build(inner);
                self.add_transition(start, None, s);
                self.add_transition(start, None, accept);
                self.add_transition(a, None, s);
                self.add_transition(a, None, accept);
                (start, accept)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LabelId {
        LabelId::new(i)
    }

    #[test]
    fn empty_language_accepts_nothing() {
        let nfa = Nfa::from_regex(&Regex::Empty);
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&[l(0)]));
    }

    #[test]
    fn epsilon_accepts_only_the_empty_word() {
        let nfa = Nfa::from_regex(&Regex::Epsilon);
        assert!(nfa.accepts(&[]));
        assert!(!nfa.accepts(&[l(0)]));
    }

    #[test]
    fn single_symbol() {
        let nfa = Nfa::from_regex(&Regex::symbol(l(0)));
        assert!(nfa.accepts(&[l(0)]));
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&[l(1)]));
        assert!(!nfa.accepts(&[l(0), l(0)]));
    }

    #[test]
    fn concatenation_and_union() {
        // (a·b) + c
        let r = Regex::union([
            Regex::concat([Regex::symbol(l(0)), Regex::symbol(l(1))]),
            Regex::symbol(l(2)),
        ]);
        let nfa = Nfa::from_regex(&r);
        assert!(nfa.accepts(&[l(0), l(1)]));
        assert!(nfa.accepts(&[l(2)]));
        assert!(!nfa.accepts(&[l(0)]));
        assert!(!nfa.accepts(&[l(1), l(0)]));
    }

    #[test]
    fn star_accepts_any_repetition() {
        let r = Regex::star(Regex::symbol(l(0)));
        let nfa = Nfa::from_regex(&r);
        assert!(nfa.accepts(&[]));
        assert!(nfa.accepts(&[l(0)]));
        assert!(nfa.accepts(&[l(0); 5]));
        assert!(!nfa.accepts(&[l(0), l(1)]));
    }

    #[test]
    fn motivating_query_membership() {
        // (tram + bus)* · cinema with tram=0, bus=1, cinema=2
        let r = Regex::concat([
            Regex::star(Regex::union([Regex::symbol(l(0)), Regex::symbol(l(1))])),
            Regex::symbol(l(2)),
        ]);
        let nfa = Nfa::from_regex(&r);
        assert!(nfa.accepts(&[l(2)]));
        assert!(nfa.accepts(&[l(0), l(2)]));
        assert!(nfa.accepts(&[l(1), l(0), l(1), l(2)]));
        assert!(!nfa.accepts(&[l(0), l(1)]));
        assert!(!nfa.accepts(&[l(2), l(2)]));
    }

    #[test]
    fn symbols_reports_used_alphabet() {
        let r = Regex::concat([Regex::symbol(l(3)), Regex::symbol(l(1))]);
        let nfa = Nfa::from_regex(&r);
        let symbols: Vec<LabelId> = nfa.symbols().into_iter().collect();
        assert_eq!(symbols, vec![l(1), l(3)]);
    }

    #[test]
    fn manual_construction_and_epsilon_closure() {
        let mut nfa = Nfa::empty_language();
        let s1 = nfa.add_state(false);
        let s2 = nfa.add_state(true);
        nfa.add_transition(nfa.start(), None, s1);
        nfa.add_transition(s1, Some(l(0)), s2);
        let closure = nfa.epsilon_closure(&BTreeSet::from([nfa.start()]));
        assert!(closure.contains(&s1));
        assert!(!closure.contains(&s2));
        assert!(nfa.accepts(&[l(0)]));
        assert_eq!(nfa.state_count(), 3);
    }

    #[test]
    fn set_start_and_accepting_flags() {
        let mut nfa = Nfa::empty_language();
        let s = nfa.add_state(false);
        nfa.set_start(s);
        nfa.set_accepting(s, true);
        assert_eq!(nfa.start(), s);
        assert!(nfa.is_accepting(s));
        assert!(nfa.accepts(&[]));
    }

    #[test]
    fn plus_requires_at_least_one() {
        let r = Regex::plus(Regex::symbol(l(0)));
        let nfa = Nfa::from_regex(&r);
        assert!(!nfa.accepts(&[]));
        assert!(nfa.accepts(&[l(0)]));
        assert!(nfa.accepts(&[l(0), l(0), l(0)]));
    }
}
