//! Prefix-tree acceptor (PTA) construction.
//!
//! The learning algorithm of the paper starts from the prefix-tree acceptor
//! of the selected positive paths: a tree-shaped DFA whose states are the
//! prefixes of the sample and whose accepting states are exactly the sample
//! words.  Generalization then proceeds by merging states of this automaton
//! (see `gps-learner::merge`).

use crate::dfa::Dfa;
use gps_graph::LabelId;

/// Builds the prefix-tree acceptor of a finite sample of words.
///
/// The resulting DFA accepts exactly the words of the sample.  State `0` is
/// the root (the empty prefix); every other state corresponds to a distinct
/// proper prefix of some sample word, in trie insertion order.
pub fn build_pta<I>(sample: I) -> Dfa
where
    I: IntoIterator,
    I::Item: AsRef<[LabelId]>,
{
    let mut dfa = Dfa::empty_language();
    for word in sample {
        let mut state = dfa.start();
        for &symbol in word.as_ref() {
            state = match dfa.step(state, symbol) {
                Some(next) => next,
                None => {
                    let next = dfa.add_state(false);
                    dfa.add_transition(state, symbol, next);
                    next
                }
            };
        }
        dfa.set_accepting(state, true);
    }
    dfa
}

/// Builds the PTA of a sample and returns it together with the states in
/// breadth-first (length-then-lexicographic) order — the canonical merge
/// order used by RPNI-style generalization.
pub fn build_pta_with_order<I>(sample: I) -> (Dfa, Vec<usize>)
where
    I: IntoIterator,
    I::Item: AsRef<[LabelId]>,
{
    let dfa = build_pta(sample);
    let mut order = Vec::with_capacity(dfa.state_count());
    let mut queue = std::collections::VecDeque::new();
    let mut visited = vec![false; dfa.state_count()];
    queue.push_back(dfa.start());
    visited[dfa.start()] = true;
    while let Some(state) = queue.pop_front() {
        order.push(state);
        for (_, target) in dfa.transitions_from(state) {
            if !visited[target] {
                visited[target] = true;
                queue.push_back(target);
            }
        }
    }
    (dfa, order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::LabelId;

    fn l(i: u32) -> LabelId {
        LabelId::new(i)
    }

    #[test]
    fn pta_accepts_exactly_the_sample() {
        let sample = vec![
            vec![l(1), l(0), l(2)], // bus·tram·cinema
            vec![l(2)],             // cinema
        ];
        let pta = build_pta(&sample);
        assert!(pta.accepts(&[l(1), l(0), l(2)]));
        assert!(pta.accepts(&[l(2)]));
        assert!(!pta.accepts(&[l(1)]));
        assert!(!pta.accepts(&[l(1), l(0)]));
        assert!(!pta.accepts(&[]));
        assert!(!pta.accepts(&[l(2), l(2)]));
    }

    #[test]
    fn pta_is_tree_shaped() {
        let sample = vec![vec![l(0), l(1)], vec![l(0), l(2)], vec![l(3)]];
        let pta = build_pta(&sample);
        // Root + a + ab + ac + d = 5 states.
        assert_eq!(pta.state_count(), 5);
        // Every non-root state has exactly one incoming transition.
        let mut indegree = vec![0usize; pta.state_count()];
        for state in 0..pta.state_count() {
            for (_, target) in pta.transitions_from(state) {
                indegree[target] += 1;
            }
        }
        assert_eq!(indegree[pta.start()], 0);
        assert!(indegree.iter().skip(1).all(|&d| d == 1));
    }

    #[test]
    fn empty_sample_gives_empty_language() {
        let pta = build_pta(Vec::<Vec<LabelId>>::new());
        assert_eq!(pta.state_count(), 1);
        assert!(!pta.accepts(&[]));
    }

    #[test]
    fn empty_word_marks_root_accepting() {
        let pta = build_pta(vec![Vec::<LabelId>::new()]);
        assert!(pta.accepts(&[]));
        assert!(pta.is_accepting(pta.start()));
    }

    #[test]
    fn duplicate_words_do_not_add_states() {
        let once = build_pta(vec![vec![l(0), l(1)]]);
        let twice = build_pta(vec![vec![l(0), l(1)], vec![l(0), l(1)]]);
        assert_eq!(once.state_count(), twice.state_count());
    }

    #[test]
    fn bfs_order_starts_at_root_and_respects_depth() {
        let (pta, order) = build_pta_with_order(vec![vec![l(0), l(1)], vec![l(2)]]);
        assert_eq!(order.len(), pta.state_count());
        assert_eq!(order[0], pta.start());
        // Depth of each state along the order must be non-decreasing: compute
        // depths by walking words.
        let depth_of = |state: usize| -> usize {
            // The PTA is a tree: BFS from root to find the state's depth.
            let mut depths = vec![usize::MAX; pta.state_count()];
            depths[pta.start()] = 0;
            let mut queue = std::collections::VecDeque::from([pta.start()]);
            while let Some(s) = queue.pop_front() {
                for (_, t) in pta.transitions_from(s) {
                    if depths[t] == usize::MAX {
                        depths[t] = depths[s] + 1;
                        queue.push_back(t);
                    }
                }
            }
            depths[state]
        };
        let depths: Vec<usize> = order.iter().map(|&s| depth_of(s)).collect();
        for window in depths.windows(2) {
            assert!(window[0] <= window[1]);
        }
    }
}
