//! The regular-expression AST.
//!
//! Path queries in GPS are regular expressions over the edge-label alphabet,
//! e.g. the paper's motivating query `(tram + bus)* · cinema`.  The AST uses
//! n-ary concatenation and union, and the smart constructors apply the usual
//! algebraic simplifications (identity and absorbing elements, flattening,
//! star idempotence) so structurally different but trivially equal
//! expressions normalize to the same shape.

use crate::alphabet::Alphabet;
use gps_graph::LabelId;
use serde::{Deserialize, Serialize};

/// A regular expression over [`LabelId`] symbols.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Regex {
    /// The empty language ∅.
    Empty,
    /// The language containing only the empty word ε.
    Epsilon,
    /// A single symbol.
    Symbol(LabelId),
    /// Concatenation `r1 · r2 · … · rn` (n ≥ 2 after simplification).
    Concat(Vec<Regex>),
    /// Union `r1 + r2 + … + rn` (n ≥ 2 after simplification).
    Union(Vec<Regex>),
    /// Kleene star `r*`.
    Star(Box<Regex>),
}

impl Regex {
    /// The empty-language expression ∅.
    pub fn empty() -> Self {
        Regex::Empty
    }

    /// The empty-word expression ε.
    pub fn epsilon() -> Self {
        Regex::Epsilon
    }

    /// A single-symbol expression.
    pub fn symbol(label: LabelId) -> Self {
        Regex::Symbol(label)
    }

    /// The expression spelling exactly the given word.
    pub fn word(word: &[LabelId]) -> Self {
        Regex::concat(word.iter().map(|&l| Regex::Symbol(l)))
    }

    /// Smart concatenation: flattens nested concatenations, drops ε factors
    /// and collapses to ∅ if any factor is ∅.
    pub fn concat(parts: impl IntoIterator<Item = Regex>) -> Self {
        let mut flat = Vec::new();
        for part in parts {
            match part {
                Regex::Epsilon => {}
                Regex::Empty => return Regex::Empty,
                Regex::Concat(inner) => flat.extend(inner),
                other => flat.push(other),
            }
        }
        match flat.len() {
            0 => Regex::Epsilon,
            1 => flat.pop().expect("len checked"),
            _ => Regex::Concat(flat),
        }
    }

    /// Smart union: flattens nested unions, drops ∅ alternatives, and
    /// deduplicates syntactically equal alternatives.
    pub fn union(parts: impl IntoIterator<Item = Regex>) -> Self {
        let mut flat: Vec<Regex> = Vec::new();
        for part in parts {
            match part {
                Regex::Empty => {}
                Regex::Union(inner) => {
                    for r in inner {
                        if !flat.contains(&r) {
                            flat.push(r);
                        }
                    }
                }
                other => {
                    if !flat.contains(&other) {
                        flat.push(other);
                    }
                }
            }
        }
        match flat.len() {
            0 => Regex::Empty,
            1 => flat.pop().expect("len checked"),
            _ => Regex::Union(flat),
        }
    }

    /// Smart star: `∅* = ε* = ε`, `(r*)* = r*`.
    pub fn star(inner: Regex) -> Self {
        match inner {
            Regex::Empty | Regex::Epsilon => Regex::Epsilon,
            star @ Regex::Star(_) => star,
            other => Regex::Star(Box::new(other)),
        }
    }

    /// `r+ = r · r*`.
    pub fn plus(inner: Regex) -> Self {
        Regex::concat([inner.clone(), Regex::star(inner)])
    }

    /// `r? = ε + r`.
    pub fn optional(inner: Regex) -> Self {
        Regex::union([Regex::Epsilon, inner])
    }

    /// Binary concatenation convenience.
    pub fn then(self, other: Regex) -> Self {
        Regex::concat([self, other])
    }

    /// Binary union convenience.
    pub fn or(self, other: Regex) -> Self {
        Regex::union([self, other])
    }

    /// Returns `true` when the language of the expression contains ε.
    /// Computed syntactically (no automaton construction).
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Symbol(_) => false,
            Regex::Epsilon | Regex::Star(_) => true,
            Regex::Concat(parts) => parts.iter().all(Regex::nullable),
            Regex::Union(parts) => parts.iter().any(Regex::nullable),
        }
    }

    /// Returns `true` when the language is syntactically empty (the
    /// expression is ∅ or only built from ∅ in ways that preserve emptiness).
    /// Smart constructors already normalize such cases to `Regex::Empty`, so
    /// this is mostly a convenience for hand-built values.
    pub fn is_empty_language(&self) -> bool {
        match self {
            Regex::Empty => true,
            Regex::Epsilon | Regex::Symbol(_) | Regex::Star(_) => false,
            Regex::Concat(parts) => parts.iter().any(Regex::is_empty_language),
            Regex::Union(parts) => parts.iter().all(Regex::is_empty_language),
        }
    }

    /// The set of symbols occurring in the expression.
    pub fn alphabet(&self) -> Alphabet {
        let mut symbols = Vec::new();
        self.collect_symbols(&mut symbols);
        Alphabet::from_labels(symbols)
    }

    fn collect_symbols(&self, out: &mut Vec<LabelId>) {
        match self {
            Regex::Empty | Regex::Epsilon => {}
            Regex::Symbol(l) => out.push(*l),
            Regex::Concat(parts) | Regex::Union(parts) => {
                for p in parts {
                    p.collect_symbols(out);
                }
            }
            Regex::Star(inner) => inner.collect_symbols(out),
        }
    }

    /// Structural size of the expression (number of AST nodes), a proxy for
    /// query complexity used by the experiments.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Symbol(_) => 1,
            Regex::Concat(parts) | Regex::Union(parts) => {
                1 + parts.iter().map(Regex::size).sum::<usize>()
            }
            Regex::Star(inner) => 1 + inner.size(),
        }
    }

    /// Star height (maximum nesting depth of Kleene stars).
    pub fn star_height(&self) -> usize {
        match self {
            Regex::Empty | Regex::Epsilon | Regex::Symbol(_) => 0,
            Regex::Concat(parts) | Regex::Union(parts) => {
                parts.iter().map(Regex::star_height).max().unwrap_or(0)
            }
            Regex::Star(inner) => 1 + inner.star_height(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LabelId {
        LabelId::new(i)
    }

    #[test]
    fn concat_simplifications() {
        assert_eq!(
            Regex::concat([Regex::Epsilon, Regex::symbol(l(0)), Regex::Epsilon]),
            Regex::symbol(l(0))
        );
        assert_eq!(
            Regex::concat([Regex::symbol(l(0)), Regex::Empty]),
            Regex::Empty
        );
        assert_eq!(Regex::concat(std::iter::empty()), Regex::Epsilon);
        // Nested concatenations flatten.
        let nested = Regex::concat([
            Regex::concat([Regex::symbol(l(0)), Regex::symbol(l(1))]),
            Regex::symbol(l(2)),
        ]);
        assert_eq!(
            nested,
            Regex::Concat(vec![
                Regex::symbol(l(0)),
                Regex::symbol(l(1)),
                Regex::symbol(l(2))
            ])
        );
    }

    #[test]
    fn union_simplifications() {
        assert_eq!(
            Regex::union([Regex::Empty, Regex::symbol(l(0))]),
            Regex::symbol(l(0))
        );
        assert_eq!(Regex::union(std::iter::empty()), Regex::Empty);
        // Duplicates collapse.
        assert_eq!(
            Regex::union([Regex::symbol(l(0)), Regex::symbol(l(0))]),
            Regex::symbol(l(0))
        );
        // Nested unions flatten.
        let nested = Regex::union([
            Regex::union([Regex::symbol(l(0)), Regex::symbol(l(1))]),
            Regex::symbol(l(2)),
        ]);
        assert_eq!(
            nested,
            Regex::Union(vec![
                Regex::symbol(l(0)),
                Regex::symbol(l(1)),
                Regex::symbol(l(2))
            ])
        );
    }

    #[test]
    fn star_simplifications() {
        assert_eq!(Regex::star(Regex::Empty), Regex::Epsilon);
        assert_eq!(Regex::star(Regex::Epsilon), Regex::Epsilon);
        let a_star = Regex::star(Regex::symbol(l(0)));
        assert_eq!(Regex::star(a_star.clone()), a_star);
    }

    #[test]
    fn plus_and_optional_expand() {
        let a = Regex::symbol(l(0));
        let plus = Regex::plus(a.clone());
        assert_eq!(plus, Regex::concat([a.clone(), Regex::star(a.clone())]));
        let opt = Regex::optional(a.clone());
        assert!(opt.nullable());
    }

    #[test]
    fn nullability() {
        let a = Regex::symbol(l(0));
        assert!(!a.nullable());
        assert!(Regex::Epsilon.nullable());
        assert!(!Regex::Empty.nullable());
        assert!(Regex::star(a.clone()).nullable());
        assert!(!Regex::concat([a.clone(), Regex::star(a.clone())]).nullable());
        assert!(Regex::union([a.clone(), Regex::Epsilon]).nullable());
    }

    #[test]
    fn empty_language_detection() {
        assert!(Regex::Empty.is_empty_language());
        assert!(!Regex::Epsilon.is_empty_language());
        // Hand-built (not via smart constructors) values:
        let concat_with_empty = Regex::Concat(vec![Regex::symbol(l(0)), Regex::Empty]);
        assert!(concat_with_empty.is_empty_language());
        let union_of_empties = Regex::Union(vec![Regex::Empty, Regex::Empty]);
        assert!(union_of_empties.is_empty_language());
    }

    #[test]
    fn alphabet_collects_symbols() {
        let q = Regex::concat([
            Regex::star(Regex::union([Regex::symbol(l(0)), Regex::symbol(l(1))])),
            Regex::symbol(l(2)),
        ]);
        let alpha = q.alphabet();
        assert_eq!(alpha.symbols(), &[l(0), l(1), l(2)]);
    }

    #[test]
    fn size_and_star_height() {
        let q = Regex::concat([
            Regex::star(Regex::union([Regex::symbol(l(0)), Regex::symbol(l(1))])),
            Regex::symbol(l(2)),
        ]);
        // concat(star(union(a,b)), c): 1 + (1 + (1+1+1)) + 1 = 6
        assert_eq!(q.size(), 6);
        assert_eq!(q.star_height(), 1);
        assert_eq!(Regex::symbol(l(0)).star_height(), 0);
        let nested = Regex::star(Regex::concat([
            Regex::symbol(l(0)),
            Regex::star(Regex::symbol(l(1))),
        ]));
        assert_eq!(nested.star_height(), 2);
    }

    #[test]
    fn word_builds_concatenation() {
        assert_eq!(Regex::word(&[]), Regex::Epsilon);
        assert_eq!(Regex::word(&[l(3)]), Regex::symbol(l(3)));
        assert_eq!(
            Regex::word(&[l(1), l(2)]),
            Regex::Concat(vec![Regex::symbol(l(1)), Regex::symbol(l(2))])
        );
    }

    #[test]
    fn then_and_or_compose() {
        let a = Regex::symbol(l(0));
        let b = Regex::symbol(l(1));
        assert_eq!(
            a.clone().then(b.clone()),
            Regex::Concat(vec![a.clone(), b.clone()])
        );
        assert_eq!(a.clone().or(b.clone()), Regex::Union(vec![a, b]));
    }
}
