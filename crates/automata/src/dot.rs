//! Graphviz DOT export of automata.
//!
//! Learned queries are automata before they are shown as regular expressions;
//! exporting them as DOT makes the learner's intermediate hypotheses easy to
//! inspect (`dot -Tsvg`).  Accepting states use a double circle, the start
//! state is marked by an incoming arrow from an invisible node, and labels
//! are resolved through a [`LabelInterner`] when one is provided.

use crate::dfa::Dfa;
use crate::nfa::Nfa;
use gps_graph::{LabelId, LabelInterner};
use std::fmt::Write as _;

fn label_name(labels: Option<&LabelInterner>, label: LabelId) -> String {
    labels
        .and_then(|l| l.name(label))
        .map(str::to_owned)
        .unwrap_or_else(|| format!("l{}", label.raw()))
}

/// Exports a DFA as a DOT digraph.
pub fn dfa_to_dot(dfa: &Dfa, labels: Option<&LabelInterner>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph dfa {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  __start [shape=none, label=\"\"];");
    for state in 0..dfa.state_count() {
        let shape = if dfa.is_accepting(state) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  q{state} [shape={shape}];");
    }
    let _ = writeln!(out, "  __start -> q{};", dfa.start());
    for state in 0..dfa.state_count() {
        for (label, target) in dfa.transitions_from(state) {
            let _ = writeln!(
                out,
                "  q{state} -> q{target} [label=\"{}\"];",
                label_name(labels, label)
            );
        }
    }
    out.push_str("}\n");
    out
}

/// Exports an NFA as a DOT digraph (ε-transitions are labeled `ε`).
pub fn nfa_to_dot(nfa: &Nfa, labels: Option<&LabelInterner>) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph nfa {{");
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  __start [shape=none, label=\"\"];");
    for state in 0..nfa.state_count() {
        let shape = if nfa.is_accepting(state) {
            "doublecircle"
        } else {
            "circle"
        };
        let _ = writeln!(out, "  q{state} [shape={shape}];");
    }
    let _ = writeln!(out, "  __start -> q{};", nfa.start());
    for state in 0..nfa.state_count() {
        for &(symbol, target) in nfa.transitions_from(state) {
            let text = match symbol {
                Some(label) => label_name(labels, label),
                None => "ε".to_string(),
            };
            let _ = writeln!(out, "  q{state} -> q{target} [label=\"{text}\"];");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn interner() -> LabelInterner {
        let mut labels = LabelInterner::new();
        labels.intern("tram");
        labels.intern("bus");
        labels.intern("cinema");
        labels
    }

    fn motivating() -> Regex {
        let labels = interner();
        crate::parser::parse("(tram+bus)*.cinema", &labels).unwrap()
    }

    #[test]
    fn dfa_export_marks_start_and_accepting_states() {
        let dfa = Dfa::from_regex(&motivating());
        let dot = dfa_to_dot(&dfa, Some(&interner()));
        assert!(dot.contains("digraph dfa {"));
        assert!(dot.contains("__start -> q0;") || dot.contains("__start -> q1;"));
        assert!(dot.contains("doublecircle"));
        assert!(dot.contains("[label=\"cinema\"]"));
        assert!(dot.contains("[label=\"tram\"]"));
    }

    #[test]
    fn dfa_export_without_interner_uses_raw_ids() {
        let dfa = Dfa::from_regex(&motivating());
        let dot = dfa_to_dot(&dfa, None);
        assert!(dot.contains("[label=\"l0\"]"));
        assert!(!dot.contains("tram"));
    }

    #[test]
    fn nfa_export_shows_epsilon_transitions() {
        let nfa = Nfa::from_regex(&Regex::star(Regex::symbol(gps_graph::LabelId::new(0))));
        let dot = nfa_to_dot(&nfa, Some(&interner()));
        assert!(dot.contains("digraph nfa {"));
        assert!(dot.contains("ε"));
        assert!(dot.contains("[label=\"tram\"]"));
        assert!(dot.contains("doublecircle"));
    }

    #[test]
    fn exports_are_well_formed() {
        for dot in [
            dfa_to_dot(&Dfa::empty_language(), None),
            dfa_to_dot(&Dfa::epsilon_language(), None),
            nfa_to_dot(&Nfa::empty_language(), None),
        ] {
            assert!(dot.starts_with("digraph"));
            assert!(dot.trim_end().ends_with('}'));
            assert_eq!(dot.matches('{').count(), dot.matches('}').count());
        }
    }
}
