//! Deterministic finite automata.
//!
//! [`Dfa`] is the workhorse representation for query evaluation, learning and
//! language-theoretic decisions.  Transition functions are *partial*: a
//! missing transition means the word is rejected.  [`Dfa::complete`] adds an
//! explicit sink state when a total function is needed (complementation).

use crate::alphabet::Alphabet;
use crate::determinize::determinize;
use crate::minimize::minimize;
use crate::nfa::{Nfa, StateId};
use crate::regex::Regex;
use gps_graph::LabelId;
use std::collections::BTreeMap;

/// A deterministic finite automaton with a partial transition function.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Dfa {
    transitions: Vec<BTreeMap<LabelId, StateId>>,
    start: StateId,
    accepting: Vec<bool>,
}

impl Dfa {
    /// Creates a DFA with a single non-accepting state and no transitions
    /// (the empty language).
    pub fn empty_language() -> Self {
        Self {
            transitions: vec![BTreeMap::new()],
            start: 0,
            accepting: vec![false],
        }
    }

    /// Creates a DFA accepting only the empty word.
    pub fn epsilon_language() -> Self {
        Self {
            transitions: vec![BTreeMap::new()],
            start: 0,
            accepting: vec![true],
        }
    }

    /// Builds the minimal DFA of a regular expression (Thompson → subset
    /// construction → partition refinement → trimming).
    pub fn from_regex(regex: &Regex) -> Self {
        let nfa = Nfa::from_regex(regex);
        let dfa = determinize(&nfa);
        minimize(&dfa)
    }

    /// Builds a (not necessarily minimal) DFA from an NFA.
    pub fn from_nfa(nfa: &Nfa) -> Self {
        determinize(nfa)
    }

    /// Adds a fresh state.
    pub fn add_state(&mut self, accepting: bool) -> StateId {
        let id = self.transitions.len();
        self.transitions.push(BTreeMap::new());
        self.accepting.push(accepting);
        id
    }

    /// Adds (or replaces) the transition `from --symbol--> to`.
    pub fn add_transition(&mut self, from: StateId, symbol: LabelId, to: StateId) {
        self.transitions[from].insert(symbol, to);
    }

    /// Number of states.
    pub fn state_count(&self) -> usize {
        self.transitions.len()
    }

    /// The start state.
    pub fn start(&self) -> StateId {
        self.start
    }

    /// Sets the start state.
    pub fn set_start(&mut self, state: StateId) {
        assert!(state < self.state_count());
        self.start = state;
    }

    /// Returns `true` if `state` is accepting.
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state]
    }

    /// Marks a state accepting or not.
    pub fn set_accepting(&mut self, state: StateId, accepting: bool) {
        self.accepting[state] = accepting;
    }

    /// The accepting states.
    pub fn accepting_states(&self) -> Vec<StateId> {
        self.accepting
            .iter()
            .enumerate()
            .filter_map(|(i, &a)| a.then_some(i))
            .collect()
    }

    /// The transition from `state` on `symbol`, if defined.
    #[inline]
    pub fn step(&self, state: StateId, symbol: LabelId) -> Option<StateId> {
        self.transitions[state].get(&symbol).copied()
    }

    /// The outgoing transitions of `state` in symbol order.
    pub fn transitions_from(
        &self,
        state: StateId,
    ) -> impl Iterator<Item = (LabelId, StateId)> + '_ {
        self.transitions[state].iter().map(|(&l, &s)| (l, s))
    }

    /// Runs the DFA on `word` from the start state; returns the final state
    /// if every transition was defined.
    pub fn run(&self, word: &[LabelId]) -> Option<StateId> {
        let mut state = self.start;
        for &symbol in word {
            state = self.step(state, symbol)?;
        }
        Some(state)
    }

    /// Returns `true` if the DFA accepts `word`.
    pub fn accepts(&self, word: &[LabelId]) -> bool {
        self.run(word)
            .map(|state| self.accepting[state])
            .unwrap_or(false)
    }

    /// The set of symbols appearing on transitions.
    pub fn used_alphabet(&self) -> Alphabet {
        Alphabet::from_labels(self.transitions.iter().flat_map(|t| t.keys().copied()))
    }

    /// Returns a total version of the DFA over `alphabet`: every missing
    /// transition is redirected to a fresh non-accepting sink state.  If the
    /// automaton is already total, it is returned unchanged.
    pub fn complete(&self, alphabet: &Alphabet) -> Self {
        let needs_sink = self
            .transitions
            .iter()
            .any(|t| alphabet.iter().any(|symbol| !t.contains_key(&symbol)))
            || self.state_count() == 0;
        if !needs_sink {
            return self.clone();
        }
        let mut dfa = self.clone();
        let sink = dfa.add_state(false);
        for state in 0..dfa.state_count() {
            for symbol in alphabet.iter() {
                dfa.transitions[state].entry(symbol).or_insert(sink);
            }
        }
        dfa
    }

    /// Returns `true` if every state has a transition for every symbol of
    /// `alphabet`.
    pub fn is_complete(&self, alphabet: &Alphabet) -> bool {
        self.transitions
            .iter()
            .all(|t| alphabet.iter().all(|s| t.contains_key(&s)))
    }

    /// States reachable from the start state.
    pub fn reachable_states(&self) -> Vec<StateId> {
        let mut visited = vec![false; self.state_count()];
        let mut stack = vec![self.start];
        visited[self.start] = true;
        let mut order = Vec::new();
        while let Some(state) = stack.pop() {
            order.push(state);
            for (_, next) in self.transitions_from(state) {
                if !visited[next] {
                    visited[next] = true;
                    stack.push(next);
                }
            }
        }
        order.sort_unstable();
        order
    }

    /// States from which an accepting state is reachable (co-reachable).
    pub fn coreachable_states(&self) -> Vec<StateId> {
        // Build reverse adjacency.
        let mut reverse: Vec<Vec<StateId>> = vec![Vec::new(); self.state_count()];
        for state in 0..self.state_count() {
            for (_, next) in self.transitions_from(state) {
                reverse[next].push(state);
            }
        }
        let mut visited = vec![false; self.state_count()];
        let mut stack: Vec<StateId> = self.accepting_states();
        for &s in &stack {
            visited[s] = true;
        }
        while let Some(state) = stack.pop() {
            for &prev in &reverse[state] {
                if !visited[prev] {
                    visited[prev] = true;
                    stack.push(prev);
                }
            }
        }
        (0..self.state_count()).filter(|&s| visited[s]).collect()
    }

    /// Returns the *trim* part of the automaton: states both reachable and
    /// co-reachable, renumbered densely.  If the start state is not
    /// co-reachable the result recognizes the empty language.
    pub fn trim(&self) -> Self {
        let reachable = self.reachable_states();
        let coreachable: Vec<bool> = {
            let co = self.coreachable_states();
            let mut flags = vec![false; self.state_count()];
            for s in co {
                flags[s] = true;
            }
            flags
        };
        let keep: Vec<StateId> = reachable.into_iter().filter(|&s| coreachable[s]).collect();
        if keep.is_empty() || !keep.contains(&self.start) {
            return Dfa::empty_language();
        }
        let mut renumber = BTreeMap::new();
        for (new_id, &old_id) in keep.iter().enumerate() {
            renumber.insert(old_id, new_id);
        }
        let mut dfa = Dfa {
            transitions: vec![BTreeMap::new(); keep.len()],
            start: renumber[&self.start],
            accepting: vec![false; keep.len()],
        };
        for &old_id in &keep {
            let new_id = renumber[&old_id];
            dfa.accepting[new_id] = self.accepting[old_id];
            for (symbol, target) in self.transitions_from(old_id) {
                if let Some(&new_target) = renumber.get(&target) {
                    dfa.transitions[new_id].insert(symbol, new_target);
                }
            }
        }
        dfa
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LabelId {
        LabelId::new(i)
    }

    /// DFA for a*b built by hand.
    fn a_star_b() -> Dfa {
        let mut dfa = Dfa::empty_language();
        let accept = dfa.add_state(true);
        dfa.add_transition(0, l(0), 0);
        dfa.add_transition(0, l(1), accept);
        dfa
    }

    #[test]
    fn manual_dfa_accepts_expected_words() {
        let dfa = a_star_b();
        assert!(dfa.accepts(&[l(1)]));
        assert!(dfa.accepts(&[l(0), l(0), l(1)]));
        assert!(!dfa.accepts(&[]));
        assert!(!dfa.accepts(&[l(1), l(1)]));
        assert!(!dfa.accepts(&[l(2)]), "undefined transition rejects");
    }

    #[test]
    fn from_regex_matches_regex_semantics() {
        let r = Regex::concat([
            Regex::star(Regex::union([Regex::symbol(l(0)), Regex::symbol(l(1))])),
            Regex::symbol(l(2)),
        ]);
        let dfa = Dfa::from_regex(&r);
        assert!(dfa.accepts(&[l(2)]));
        assert!(dfa.accepts(&[l(0), l(1), l(0), l(2)]));
        assert!(!dfa.accepts(&[l(0), l(1)]));
        assert!(!dfa.accepts(&[]));
        // The minimal DFA for (a+b)*c has 2 states (trim, partial).
        assert_eq!(dfa.state_count(), 2);
    }

    #[test]
    fn epsilon_and_empty_language_constructors() {
        assert!(Dfa::epsilon_language().accepts(&[]));
        assert!(!Dfa::epsilon_language().accepts(&[l(0)]));
        assert!(!Dfa::empty_language().accepts(&[]));
    }

    #[test]
    fn completion_adds_a_sink() {
        let dfa = a_star_b();
        let alphabet = Alphabet::from_labels([l(0), l(1)]);
        assert!(!dfa.is_complete(&alphabet));
        let complete = dfa.complete(&alphabet);
        assert!(complete.is_complete(&alphabet));
        assert_eq!(complete.state_count(), dfa.state_count() + 1);
        // Language is unchanged.
        assert!(complete.accepts(&[l(0), l(1)]));
        assert!(!complete.accepts(&[l(1), l(0)]));
        // Completing an already-complete automaton is a no-op.
        let again = complete.complete(&alphabet);
        assert_eq!(again.state_count(), complete.state_count());
    }

    #[test]
    fn reachable_and_coreachable() {
        let mut dfa = a_star_b();
        // Add an unreachable accepting state and a dead (non-co-reachable) state.
        let unreachable = dfa.add_state(true);
        let dead = dfa.add_state(false);
        dfa.add_transition(0, l(2), dead);
        let reachable = dfa.reachable_states();
        assert!(reachable.contains(&0) && reachable.contains(&dead));
        assert!(!reachable.contains(&unreachable));
        let co = dfa.coreachable_states();
        assert!(co.contains(&0) && co.contains(&1) && co.contains(&unreachable));
        assert!(!co.contains(&dead));
    }

    #[test]
    fn trim_removes_dead_and_unreachable_states() {
        let mut dfa = a_star_b();
        let _unreachable = dfa.add_state(true);
        let dead = dfa.add_state(false);
        dfa.add_transition(0, l(2), dead);
        let trimmed = dfa.trim();
        assert_eq!(trimmed.state_count(), 2);
        assert!(trimmed.accepts(&[l(0), l(1)]));
        assert!(!trimmed.accepts(&[l(2)]));
    }

    #[test]
    fn trim_of_empty_language_is_empty() {
        let mut dfa = Dfa::empty_language();
        let s = dfa.add_state(false);
        dfa.add_transition(0, l(0), s);
        let trimmed = dfa.trim();
        assert_eq!(trimmed.state_count(), 1);
        assert!(!trimmed.accepts(&[]));
        assert!(!trimmed.accepts(&[l(0)]));
    }

    #[test]
    fn run_reports_final_state() {
        let dfa = a_star_b();
        assert_eq!(dfa.run(&[l(0), l(0)]), Some(0));
        assert_eq!(dfa.run(&[l(1)]), Some(1));
        assert_eq!(dfa.run(&[l(1), l(1)]), None);
    }

    #[test]
    fn used_alphabet_lists_symbols_on_transitions() {
        let dfa = a_star_b();
        assert_eq!(dfa.used_alphabet().symbols(), &[l(0), l(1)]);
    }

    #[test]
    fn accepting_states_listed() {
        let dfa = a_star_b();
        assert_eq!(dfa.accepting_states(), vec![1]);
    }
}
