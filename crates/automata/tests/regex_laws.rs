//! Algebraic laws of regular languages, checked through the full
//! regex → NFA → DFA → minimization → decision pipeline.  These are
//! integration tests: every law exercises construction, boolean operations
//! and the equivalence decision together.

use gps_automata::alphabet::Alphabet;
use gps_automata::decide::{equivalent, included, is_empty, regex_equivalent};
use gps_automata::ops;
use gps_automata::{Dfa, Regex};
use gps_graph::LabelId;

fn l(i: u32) -> LabelId {
    LabelId::new(i)
}

fn alphabet() -> Alphabet {
    Alphabet::from_labels([l(0), l(1), l(2)])
}

fn a() -> Regex {
    Regex::symbol(l(0))
}
fn b() -> Regex {
    Regex::symbol(l(1))
}
fn c() -> Regex {
    Regex::symbol(l(2))
}

#[test]
fn union_is_commutative_and_associative() {
    assert!(regex_equivalent(
        &Regex::union([a(), b()]),
        &Regex::union([b(), a()])
    ));
    assert!(regex_equivalent(
        &Regex::union([Regex::union([a(), b()]), c()]),
        &Regex::union([a(), Regex::union([b(), c()])])
    ));
    // Idempotence.
    assert!(regex_equivalent(&Regex::union([a(), a()]), &a()));
}

#[test]
fn concatenation_is_associative_but_not_commutative() {
    assert!(regex_equivalent(
        &Regex::concat([Regex::concat([a(), b()]), c()]),
        &Regex::concat([a(), Regex::concat([b(), c()])])
    ));
    assert!(!regex_equivalent(
        &Regex::concat([a(), b()]),
        &Regex::concat([b(), a()])
    ));
}

#[test]
fn distributivity_of_concatenation_over_union() {
    // a·(b+c) ≡ a·b + a·c
    assert!(regex_equivalent(
        &Regex::concat([a(), Regex::union([b(), c()])]),
        &Regex::union([Regex::concat([a(), b()]), Regex::concat([a(), c()])])
    ));
    // (a+b)·c ≡ a·c + b·c
    assert!(regex_equivalent(
        &Regex::concat([Regex::union([a(), b()]), c()]),
        &Regex::union([Regex::concat([a(), c()]), Regex::concat([b(), c()])])
    ));
}

#[test]
fn identity_and_absorbing_elements() {
    assert!(regex_equivalent(
        &Regex::concat([a(), Regex::Epsilon]),
        &a()
    ));
    assert!(regex_equivalent(
        &Regex::concat([Regex::Epsilon, a()]),
        &a()
    ));
    assert!(regex_equivalent(&Regex::union([a(), Regex::Empty]), &a()));
    assert!(Regex::concat([a(), Regex::Empty]).is_empty_language());
}

#[test]
fn kleene_star_laws() {
    // (a*)* = a*
    assert!(regex_equivalent(
        &Regex::star(Regex::star(a())),
        &Regex::star(a())
    ));
    // a* = ε + a·a*
    assert!(regex_equivalent(
        &Regex::star(a()),
        &Regex::union([Regex::Epsilon, Regex::concat([a(), Regex::star(a())])])
    ));
    // (a+b)* = (a*·b*)*
    assert!(regex_equivalent(
        &Regex::star(Regex::union([a(), b()])),
        &Regex::star(Regex::concat([Regex::star(a()), Regex::star(b())]))
    ));
    // (ab)*·a = a·(ba)*
    assert!(regex_equivalent(
        &Regex::concat([Regex::star(Regex::concat([a(), b()])), a()]),
        &Regex::concat([a(), Regex::star(Regex::concat([b(), a()]))])
    ));
}

#[test]
fn boolean_operation_laws_on_automata() {
    let alphabet = alphabet();
    let a_star = Dfa::from_regex(&Regex::star(a()));
    let ab_star = Dfa::from_regex(&Regex::star(Regex::union([a(), b()])));
    // L ∩ L = L ;  L ∪ L = L
    assert!(equivalent(
        &ops::intersection(&a_star, &a_star),
        &a_star,
        &alphabet
    ));
    assert!(equivalent(
        &ops::union(&a_star, &a_star, &alphabet),
        &a_star,
        &alphabet
    ));
    // L \ L = ∅
    assert!(is_empty(&ops::difference(&a_star, &a_star, &alphabet)));
    // De Morgan: ¬(L1 ∪ L2) = ¬L1 ∩ ¬L2
    let lhs = ops::complement(&ops::union(&a_star, &ab_star, &alphabet), &alphabet);
    let rhs = ops::intersection(
        &ops::complement(&a_star, &alphabet),
        &ops::complement(&ab_star, &alphabet),
    );
    assert!(equivalent(&lhs, &rhs, &alphabet));
    // Inclusion is antisymmetric up to equivalence: a* ⊆ (a+b)* but not back.
    assert!(included(&a_star, &ab_star, &alphabet));
    assert!(!included(&ab_star, &a_star, &alphabet));
}

#[test]
fn minimal_automata_of_equivalent_expressions_have_equal_size() {
    let pairs = [
        (
            Regex::star(Regex::union([a(), b()])),
            Regex::star(Regex::concat([Regex::star(a()), Regex::star(b())])),
        ),
        (
            Regex::union([Regex::concat([a(), c()]), Regex::concat([b(), c()])]),
            Regex::concat([Regex::union([a(), b()]), c()]),
        ),
        (Regex::optional(Regex::plus(a())), Regex::star(a())),
    ];
    for (left, right) in pairs {
        let dl = Dfa::from_regex(&left);
        let dr = Dfa::from_regex(&right);
        assert_eq!(
            dl.state_count(),
            dr.state_count(),
            "{left:?} vs {right:?} minimal sizes differ"
        );
    }
}

#[test]
fn motivating_query_language_facts() {
    // The paper's query: (tram+bus)*·cinema with tram=a, bus=b, cinema=c.
    let q = Regex::concat([Regex::star(Regex::union([a(), b()])), c()]);
    let dfa = Dfa::from_regex(&q);
    let alphabet = alphabet();
    // It is included in Σ*·c.
    let sigma_star_c = Dfa::from_regex(&Regex::concat([
        Regex::star(Regex::union([a(), b(), c()])),
        c(),
    ]));
    assert!(included(&dfa, &sigma_star_c, &alphabet));
    // It is not nullable and not finite.
    assert!(!q.nullable());
    assert!(!gps_automata::decide::is_finite(&dfa));
    // Its shortest word is "cinema" alone.
    assert_eq!(
        gps_automata::decide::shortest_accepted_word(&dfa),
        Some(vec![l(2)])
    );
}
