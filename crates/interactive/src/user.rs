//! Users of the interactive protocol.
//!
//! The [`User`] trait captures the three kinds of answers the demo asks of
//! its attendees: labeling a proposed node (possibly after zooming out),
//! validating or correcting a candidate path, and declaring satisfaction with
//! an intermediate query.  [`SimulatedUser`] answers according to a hidden
//! goal query — the oracle model used by the experiments in the companion
//! research paper — with a configurable zooming behaviour.

use gps_graph::{Graph, GraphBackend, Neighborhood, NodeId, Word};
use gps_learner::LearnedQuery;
use gps_rpq::{EvalHandle, PathQuery, QueryAnswer};
use std::collections::HashMap;
use std::sync::Arc;

/// The answer to a node-labeling prompt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserResponse {
    /// "Yes" — the node should be in the query answer.
    Positive,
    /// "No" — the node should not be in the query answer.
    Negative,
    /// "I cannot tell yet, show me more of the graph."
    ZoomOut,
}

/// A participant in the interactive protocol, over backend `B` (defaults to
/// [`Graph`]).
pub trait User<B: GraphBackend = Graph> {
    /// Asked to label `node` given the currently visible `neighborhood`.
    fn label_node(&mut self, graph: &B, node: NodeId, neighborhood: &Neighborhood) -> UserResponse;

    /// Asked to validate the `suggested` word for a positive `node`, given
    /// all `candidates`; returns the word the user actually has in mind
    /// (which must be one of the candidates).
    fn validate_path(
        &mut self,
        graph: &B,
        node: NodeId,
        candidates: &[Word],
        suggested: &Word,
    ) -> Word;

    /// Asked whether the user is satisfied with the current hypothesis (an
    /// optional early stop).  The default never stops early.
    fn satisfied_with(&mut self, _graph: &B, _hypothesis: &LearnedQuery) -> bool {
        false
    }
}

/// A user simulated from a hidden goal query.
///
/// * Labels a node positive iff the goal selects it;
/// * Zooms out while the goal's shortest witness for the node is longer than
///   the currently visible radius (a positive answer requires seeing the
///   evidence), up to `max_zooms` extra rings;
/// * Validates the candidate path by picking the shortest candidate the goal
///   accepts, falling back to the suggestion.
///
/// The goal's answer is computed **once** at construction and reused for
/// every labeling and satisfaction check; witness lengths are memoized per
/// node (the zoom loop re-asks about the same node at growing radii).  With
/// [`with_exec`](SimulatedUser::with_exec) both go through a shared
/// evaluation stack, so engine-driven sessions answer from the engine's
/// cache and extract witnesses with its configured execution engine.
#[derive(Debug, Clone)]
pub struct SimulatedUser {
    goal: PathQuery,
    answer_cache: Arc<QueryAnswer>,
    exec: Option<EvalHandle>,
    witness_lengths: HashMap<NodeId, Option<usize>>,
    /// Maximum number of zooms the user is willing to perform per node.
    pub max_zooms: u32,
    /// Number of zoom requests issued so far (across all nodes).
    pub zooms_performed: u64,
}

impl SimulatedUser {
    /// Creates a simulated user for `goal` on `graph`.
    pub fn new<B: GraphBackend>(goal: PathQuery, graph: &B) -> Self {
        let answer_cache = Arc::new(goal.evaluate(graph));
        Self {
            goal,
            answer_cache,
            exec: None,
            witness_lengths: HashMap::new(),
            max_zooms: 4,
            zooms_performed: 0,
        }
    }

    /// Creates a simulated user whose goal answer and witnesses come from a
    /// shared evaluation stack (the engine's cache + configured evaluator).
    pub fn with_exec(goal: PathQuery, exec: EvalHandle) -> Self {
        let answer_cache = exec.evaluate(goal.regex());
        Self {
            goal,
            answer_cache,
            exec: Some(exec),
            witness_lengths: HashMap::new(),
            max_zooms: 4,
            zooms_performed: 0,
        }
    }

    /// Sets the per-node zoom budget.
    pub fn with_max_zooms(mut self, max_zooms: u32) -> Self {
        self.max_zooms = max_zooms;
        self
    }

    /// The goal query driving this user.
    pub fn goal(&self) -> &PathQuery {
        &self.goal
    }

    /// Whether the goal selects `node` (the user's ground truth).
    pub fn wants(&self, node: NodeId) -> bool {
        self.answer_cache.contains(node)
    }
}

impl<B: GraphBackend> User<B> for SimulatedUser {
    fn label_node(&mut self, graph: &B, node: NodeId, neighborhood: &Neighborhood) -> UserResponse {
        if !self.wants(node) {
            return UserResponse::Negative;
        }
        // The user answers "yes" only once the evidence (a witness path) fits
        // inside the visible fragment; otherwise she asks to zoom out.
        let radius = neighborhood.radius() as usize;
        let witness = self.witness_length(graph, node);
        match witness {
            Some(len) if len <= radius => UserResponse::Positive,
            Some(_) if self.zooms_this_node(neighborhood) < self.max_zooms => {
                self.zooms_performed += 1;
                UserResponse::ZoomOut
            }
            Some(_) => UserResponse::Positive,
            None => UserResponse::Positive,
        }
    }

    fn validate_path(
        &mut self,
        _graph: &B,
        _node: NodeId,
        candidates: &[Word],
        suggested: &Word,
    ) -> Word {
        candidates
            .iter()
            .filter(|w| self.goal.dfa().accepts(w))
            .min_by_key(|w| w.len())
            .cloned()
            .unwrap_or_else(|| suggested.clone())
    }

    fn satisfied_with(&mut self, _graph: &B, hypothesis: &LearnedQuery) -> bool {
        // The simulated user is satisfied exactly when the hypothesis gives
        // the same answer as her goal on the whole (visible) graph; the goal
        // answer was computed once at construction.
        self.answer_cache.nodes() == hypothesis.answer.nodes()
    }
}

impl SimulatedUser {
    /// How many zooms the current neighborhood already represents beyond the
    /// paper's default starting radius of 2.
    fn zooms_this_node(&self, neighborhood: &Neighborhood) -> u32 {
        neighborhood.radius().saturating_sub(2)
    }

    /// The goal's shortest-witness length for `node`, memoized (the zoom
    /// loop asks repeatedly about the same node).
    fn witness_length<B: GraphBackend>(&mut self, graph: &B, node: NodeId) -> Option<usize> {
        if let Some(&len) = self.witness_lengths.get(&node) {
            return len;
        }
        let len = match &self.exec {
            Some(exec) => exec.witness(self.goal.dfa(), node).map(|p| p.len()),
            None => self.goal.witness(graph, node).map(|p| p.len()),
        };
        self.witness_lengths.insert(node, len);
        len
    }
}

/// A scripted user replaying a fixed sequence of responses — used by the
/// static-labeling demo scenario and by tests that need full control over
/// the answers (including deliberately inconsistent ones).
#[derive(Debug, Clone, Default)]
pub struct ScriptedUser {
    responses: Vec<UserResponse>,
    validations: Vec<Word>,
    next_response: usize,
    next_validation: usize,
}

impl ScriptedUser {
    /// Creates a scripted user from a list of label responses and a list of
    /// path validations, each consumed in order.  When a list is exhausted
    /// the user answers `Negative` / returns the suggestion.
    pub fn new(responses: Vec<UserResponse>, validations: Vec<Word>) -> Self {
        Self {
            responses,
            validations,
            next_response: 0,
            next_validation: 0,
        }
    }
}

impl<B: GraphBackend> User<B> for ScriptedUser {
    fn label_node(&mut self, _: &B, _: NodeId, _: &Neighborhood) -> UserResponse {
        let response = self
            .responses
            .get(self.next_response)
            .copied()
            .unwrap_or(UserResponse::Negative);
        self.next_response += 1;
        response
    }

    fn validate_path(&mut self, _: &B, _: NodeId, _: &[Word], suggested: &Word) -> Word {
        let validation = self
            .validations
            .get(self.next_validation)
            .cloned()
            .unwrap_or_else(|| suggested.clone());
        self.next_validation += 1;
        validation
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};

    fn goal(graph: &Graph) -> PathQuery {
        PathQuery::parse(MOTIVATING_QUERY, graph.labels()).unwrap()
    }

    #[test]
    fn simulated_user_knows_the_goal_answer() {
        let (g, ids) = figure1_graph();
        let user = SimulatedUser::new(goal(&g), &g);
        assert!(user.wants(ids.n2));
        assert!(user.wants(ids.n6));
        assert!(!user.wants(ids.n5));
        assert!(!user.wants(ids.c1));
        assert_eq!(user.goal().display(g.labels()), "(tram+bus)*·cinema");
    }

    #[test]
    fn negative_nodes_are_labeled_without_zooming() {
        let (g, ids) = figure1_graph();
        let mut user = SimulatedUser::new(goal(&g), &g);
        let hood = Neighborhood::extract(&g, ids.n5, 2);
        assert_eq!(user.label_node(&g, ids.n5, &hood), UserResponse::Negative);
        assert_eq!(user.zooms_performed, 0);
    }

    #[test]
    fn positive_node_with_long_witness_triggers_zoom() {
        let (g, ids) = figure1_graph();
        let mut user = SimulatedUser::new(goal(&g), &g);
        // N2's shortest witness has length 3 > radius 2 → zoom request.
        let hood2 = Neighborhood::extract(&g, ids.n2, 2);
        assert_eq!(user.label_node(&g, ids.n2, &hood2), UserResponse::ZoomOut);
        assert_eq!(user.zooms_performed, 1);
        // After zooming to radius 3 the evidence is visible → positive.
        let hood3 = Neighborhood::extract(&g, ids.n2, 3);
        assert_eq!(user.label_node(&g, ids.n2, &hood3), UserResponse::Positive);
    }

    #[test]
    fn zoom_budget_forces_an_answer() {
        let (g, ids) = figure1_graph();
        let mut user = SimulatedUser::new(goal(&g), &g).with_max_zooms(0);
        let hood2 = Neighborhood::extract(&g, ids.n2, 2);
        assert_eq!(user.label_node(&g, ids.n2, &hood2), UserResponse::Positive);
    }

    #[test]
    fn path_validation_picks_a_goal_accepted_word() {
        let (g, ids) = figure1_graph();
        let mut user = SimulatedUser::new(goal(&g), &g);
        let bus = g.label_id("bus").unwrap();
        let tram = g.label_id("tram").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        let restaurant = g.label_id("restaurant").unwrap();
        let candidates = vec![
            vec![restaurant],
            vec![bus, tram, cinema],
            vec![bus, bus, cinema],
        ];
        let chosen = user.validate_path(&g, ids.n2, &candidates, &vec![restaurant]);
        assert!(user.goal().dfa().accepts(&chosen));
        // When no candidate matches the goal, the suggestion is kept.
        let chosen2 = user.validate_path(&g, ids.n2, &[vec![restaurant]], &vec![restaurant]);
        assert_eq!(chosen2, vec![restaurant]);
    }

    #[test]
    fn exec_backed_user_behaves_like_the_direct_user() {
        let (g, ids) = figure1_graph();
        let exec = gps_rpq::EvalHandle::naive(&g);
        let mut direct = SimulatedUser::new(goal(&g), &g);
        let mut shared = SimulatedUser::with_exec(goal(&g), exec.clone());
        for node in [ids.n1, ids.n2, ids.n5, ids.c1] {
            assert_eq!(direct.wants(node), shared.wants(node), "{node}");
            for radius in 2..=4 {
                let hood = Neighborhood::extract(&g, node, radius);
                assert_eq!(
                    direct.label_node(&g, node, &hood),
                    shared.label_node(&g, node, &hood),
                    "{node} @ r{radius}"
                );
            }
        }
        // The goal answer went through (and primed) the shared cache.
        let (_, misses) = exec.cache().stats();
        assert!(misses >= 1);
        assert!(
            Arc::ptr_eq(
                &exec.evaluate(shared.goal().regex()),
                &exec.evaluate(shared.goal().regex())
            ),
            "repeat goal evaluations are shared cache hits"
        );
    }

    #[test]
    fn satisfied_with_uses_the_cached_goal_answer() {
        let (g, _) = figure1_graph();
        let the_goal = goal(&g);
        let mut user = SimulatedUser::new(the_goal.clone(), &g);
        let mut ex = gps_learner::ExampleSet::new();
        for node in the_goal.evaluate(&g).nodes() {
            ex.add_positive(node);
        }
        let learned = gps_learner::Learner::default().learn(&g, &ex).unwrap();
        let expected = learned.answer.nodes() == the_goal.evaluate(&g).nodes();
        assert_eq!(
            <SimulatedUser as User<Graph>>::satisfied_with(&mut user, &g, &learned),
            expected,
            "cached-answer satisfaction must equal the re-evaluated one"
        );
    }

    #[test]
    fn scripted_user_replays_and_then_defaults() {
        let (g, ids) = figure1_graph();
        let hood = Neighborhood::extract(&g, ids.n1, 2);
        let mut user = ScriptedUser::new(
            vec![UserResponse::Positive, UserResponse::ZoomOut],
            vec![vec![g.label_id("tram").unwrap()]],
        );
        assert_eq!(user.label_node(&g, ids.n1, &hood), UserResponse::Positive);
        assert_eq!(user.label_node(&g, ids.n1, &hood), UserResponse::ZoomOut);
        assert_eq!(user.label_node(&g, ids.n1, &hood), UserResponse::Negative);
        let suggestion = vec![g.label_id("bus").unwrap()];
        assert_eq!(
            user.validate_path(&g, ids.n1, &[], &suggestion),
            vec![g.label_id("tram").unwrap()]
        );
        assert_eq!(user.validate_path(&g, ids.n1, &[], &suggestion), suggestion);
    }
}
