//! The interactive session loop (Figure 2 of the paper).
//!
//! A [`Session`] owns the evolving state of one specification task: the
//! examples collected so far, the negative coverage, the pruning state, the
//! current hypothesis, and the statistics.  [`Session::run`] drives the loop
//! with a [`Strategy`] and a [`User`] until a halt condition fires;
//! [`Session::step`] performs a single interaction and is what the
//! step-by-step demo scenarios use.

use crate::halt::{HaltConfig, HaltReason};
use crate::metrics::SessionMetrics;
use crate::pruning::PruningState;
use crate::stats::SessionStats;
use crate::strategy::{Strategy, StrategyContext};
use crate::user::{User, UserResponse};
use crate::validation;
use crate::zoom::ZoomState;
use gps_graph::{Graph, GraphBackend, NodeId, Word};
use gps_learner::{ExampleSet, Label, LearnedQuery, Learner};
use gps_rpq::{EvalHandle, NegativeCoverage};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of an interactive session.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Radius of the first neighborhood shown for a proposed node (the paper
    /// uses 2).
    pub initial_radius: u32,
    /// Maximum radius the user can zoom out to.
    pub max_radius: u32,
    /// Path-length bound shared by the coverage, the pruning and the learner.
    pub path_bound: usize,
    /// Whether the path-validation step (Figure 3(c)) is part of the loop —
    /// the difference between the second and third demo scenarios.
    pub with_path_validation: bool,
    /// Halt conditions.
    pub halt: HaltConfig,
    /// The learner configuration.
    pub learner: Learner,
}

impl Default for SessionConfig {
    fn default() -> Self {
        Self {
            initial_radius: 2,
            max_radius: 6,
            path_bound: 4,
            with_path_validation: true,
            halt: HaltConfig::default(),
            learner: Learner::default(),
        }
    }
}

impl SessionConfig {
    /// The configuration of the second demo scenario: interactive labeling
    /// without path validation.
    pub fn without_path_validation() -> Self {
        Self {
            with_path_validation: false,
            ..Self::default()
        }
    }
}

/// One entry of the session transcript.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteractionRecord {
    /// The node proposed to the user.
    pub node: NodeId,
    /// How many times the user zoomed out before answering.
    pub zooms: usize,
    /// The label the user gave.
    pub label: Label,
    /// The word the user validated (positive labels with path validation
    /// only).
    pub validated_word: Option<Word>,
}

/// The final result of a session.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// The last hypothesis learned, if any.
    pub learned: Option<LearnedQuery>,
    /// Why the session stopped.
    pub halt_reason: HaltReason,
    /// The collected statistics.
    pub stats: SessionStats,
    /// The per-interaction transcript.
    pub transcript: Vec<InteractionRecord>,
    /// The examples provided by the user.
    pub examples: ExampleSet,
}

/// How a session holds its graph: borrowed from the caller (the classic
/// single-session shape) or shared behind an [`Arc`] (the service shape —
/// a `Session<'static, CsrGraph>` that can be stored in a session manager
/// and driven from worker threads).
#[derive(Debug)]
enum GraphRef<'g, B> {
    Borrowed(&'g B),
    Shared(Arc<B>),
}

impl<B> GraphRef<'_, B> {
    fn get(&self) -> &B {
        match self {
            GraphRef::Borrowed(graph) => graph,
            GraphRef::Shared(graph) => graph.as_ref(),
        }
    }
}

/// An in-progress interactive specification session over backend `B`
/// (defaults to the mutable [`Graph`]; run sessions on a
/// [`gps_graph::CsrGraph`] snapshot for cache-friendly traversal).
///
/// Every DFA evaluation inside the loop — the learner's consistency check,
/// the incremental pruning's dirty-set query — goes through the session's
/// [`EvalHandle`].  [`Session::new`] builds a private naive handle;
/// [`Session::with_exec`] shares an engine's cache and configured execution
/// engine, putting the whole loop on the frontier fast path;
/// [`Session::with_shared_exec`] additionally shares ownership of the graph
/// snapshot itself, producing a `'static` session that outlives its creator
/// (the shape the multi-session service stores and steps from worker
/// threads).
#[derive(Debug)]
pub struct Session<'g, B: GraphBackend = Graph> {
    graph: GraphRef<'g, B>,
    exec: EvalHandle,
    config: SessionConfig,
    examples: ExampleSet,
    coverage: NegativeCoverage,
    pruning: PruningState,
    stats: SessionStats,
    hypothesis: Option<LearnedQuery>,
    transcript: Vec<InteractionRecord>,
    metrics: SessionMetrics,
}

impl<B: GraphBackend> Session<'static, B> {
    /// Creates a session co-owning its graph: behavior is identical to
    /// [`Session::with_exec`] over the same graph and stack, but the session
    /// borrows nothing, so it can be stored (e.g. in a session manager's
    /// table) and stepped from worker threads long after the creating scope
    /// ended.
    ///
    /// `exec` must have been built over (a snapshot of) `graph`.
    pub fn with_shared_exec(graph: Arc<B>, config: SessionConfig, exec: EvalHandle) -> Self {
        Self::from_graph_ref(GraphRef::Shared(graph), config, exec)
    }
}

impl<'g, B: GraphBackend> Session<'g, B> {
    /// Creates a session over `graph` with a private reference evaluation
    /// stack (one snapshot + the naive evaluator).
    pub fn new(graph: &'g B, config: SessionConfig) -> Self {
        let exec = EvalHandle::naive(graph);
        Self::with_exec(graph, config, exec)
    }

    /// Creates a session over `graph` evaluating through a shared stack —
    /// the way engine-driven sessions run, so the session, the learner, the
    /// pruning and the engine's own query API share one cache, evaluator and
    /// snapshot.
    ///
    /// `exec` must have been built over (a snapshot of) `graph`.
    pub fn with_exec(graph: &'g B, config: SessionConfig, exec: EvalHandle) -> Self {
        Self::from_graph_ref(GraphRef::Borrowed(graph), config, exec)
    }

    /// The evaluation stack this session runs on.
    pub fn exec(&self) -> &EvalHandle {
        &self.exec
    }

    /// The graph backend this session runs on.
    pub fn graph(&self) -> &B {
        self.graph.get()
    }

    fn from_graph_ref(graph: GraphRef<'g, B>, config: SessionConfig, exec: EvalHandle) -> Self {
        let coverage = NegativeCoverage::new(config.path_bound);
        let pruning = PruningState::new(config.path_bound);
        Self {
            graph,
            exec,
            config,
            examples: ExampleSet::new(),
            coverage,
            pruning,
            stats: SessionStats::default(),
            hypothesis: None,
            transcript: Vec::new(),
            metrics: SessionMetrics::disabled(),
        }
    }

    /// Installs telemetry handles (see [`SessionMetrics`]) into the session
    /// and its pruning state.  Purely observational: the transcript produced
    /// by an instrumented session is byte-identical to an uninstrumented run.
    pub fn set_metrics(&mut self, metrics: SessionMetrics) {
        self.pruning.set_metrics(metrics.pruning.clone());
        self.metrics = metrics;
    }

    /// The examples collected so far.
    pub fn examples(&self) -> &ExampleSet {
        &self.examples
    }

    /// The current hypothesis, if one has been learned.
    pub fn hypothesis(&self) -> Option<&LearnedQuery> {
        self.hypothesis.as_ref()
    }

    /// The statistics collected so far.
    pub fn stats(&self) -> &SessionStats {
        &self.stats
    }

    /// The session configuration.
    pub fn config(&self) -> &SessionConfig {
        &self.config
    }

    /// Performs one interaction.  Returns `Some(reason)` when a halt
    /// condition fired (either before or after the interaction), `None` when
    /// the loop should continue.
    pub fn step<S: Strategy<B> + ?Sized, U: User<B> + ?Sized>(
        &mut self,
        strategy: &mut S,
        user: &mut U,
    ) -> Option<HaltReason> {
        if self.stats.interactions >= self.config.halt.max_interactions {
            return Some(HaltReason::InteractionBudgetExhausted);
        }
        let started = Instant::now();
        let graph = self.graph.get();

        // 1–3: pick the next informative node (incremental refresh: only
        // nodes spelling newly covered words are rescanned).
        self.pruning
            .refresh_with(graph, &self.examples, &self.coverage, &self.exec);
        let node = {
            let ctx = StrategyContext {
                graph,
                examples: &self.examples,
                coverage: &self.coverage,
                pruning: &self.pruning,
            };
            match strategy.propose(&ctx) {
                Some(node) => node,
                None => return Some(HaltReason::AllNodesResolved),
            }
        };

        // 4–5: show the neighborhood, zoom on demand, collect the label.
        let mut zoom = ZoomState::new(
            graph,
            node,
            self.config.initial_radius,
            self.config.max_radius,
        );
        let response = loop {
            match user.label_node(graph, node, zoom.neighborhood()) {
                UserResponse::ZoomOut => {
                    if zoom.zoom_out(graph).is_some() {
                        self.stats.zooms += 1;
                        continue;
                    }
                    // Nothing more to reveal: a user who still cannot decide
                    // conservatively answers "No".
                    break UserResponse::Negative;
                }
                decided => break decided,
            }
        };

        // 6: record the label (and the validated path for positives).
        let record = match response {
            UserResponse::Positive => {
                self.stats.positive_labels += 1;
                let validated = if self.config.with_path_validation {
                    Self::validate_path(
                        graph,
                        &self.exec,
                        &self.coverage,
                        &mut self.stats,
                        user,
                        node,
                        zoom.radius() as usize,
                    )
                } else {
                    None
                };
                match &validated {
                    Some(word) => self.examples.set_validated_path(node, word.clone()),
                    None => {
                        self.examples.add_positive(node);
                    }
                }
                InteractionRecord {
                    node,
                    zooms: zoom.zoom_count(),
                    label: Label::Positive,
                    validated_word: validated,
                }
            }
            UserResponse::Negative => {
                self.stats.negative_labels += 1;
                self.examples.add_negative(node);
                // Cover the node's words from the shared per-snapshot word
                // cache when it matches this graph (same epoch and node
                // count); identical to enumerating them here.  The epoch
                // check comes first so a misrouted handle never enumerates
                // (and caches) a foreign snapshot's words.
                let cached = (self.exec.epoch() == graph.epoch())
                    .then(|| self.exec.bounded_words(self.coverage.bound()))
                    .filter(|cached| cached.len() == graph.node_count());
                match cached {
                    Some(cached) => {
                        self.coverage
                            .add_negative_with_words(node, &cached[node.index()]);
                    }
                    None => {
                        self.coverage.add_negative(graph, node);
                    }
                }
                InteractionRecord {
                    node,
                    zooms: zoom.zoom_count(),
                    label: Label::Negative,
                    validated_word: None,
                }
            }
            UserResponse::ZoomOut => unreachable!("resolved by the zoom loop"),
        };
        self.stats.interactions += 1;
        self.metrics.interactions.inc();
        self.transcript.push(record);

        // Learn from all labels, propagate, prune.  The learner shares the
        // session's coverage and evaluation stack, so the consistency check
        // runs on the configured engine (and repeat hypotheses hit the
        // cache).
        if self.examples.positive_count() > 0 {
            if let Ok(learned) =
                self.config
                    .learner
                    .learn_with(graph, &self.examples, &self.coverage, &self.exec)
            {
                self.hypothesis = Some(learned);
            }
        }
        self.pruning
            .refresh_with(graph, &self.examples, &self.coverage, &self.exec);
        self.stats
            .pruned_after_interaction
            .push(self.pruning.pruned_count());
        self.stats.record_interaction_time(started.elapsed());

        // Halt checks.
        if self.config.halt.stop_on_goal {
            if let Some(hypothesis) = &self.hypothesis {
                if user.satisfied_with(graph, hypothesis) {
                    return Some(HaltReason::UserSatisfied);
                }
            }
        }
        if self.stats.interactions >= self.config.halt.max_interactions {
            return Some(HaltReason::InteractionBudgetExhausted);
        }
        None
    }

    /// Free-standing so the caller can keep borrowing the graph through
    /// [`GraphRef`] while the statistics are updated (disjoint fields).
    fn validate_path<U: User<B> + ?Sized>(
        graph: &B,
        exec: &EvalHandle,
        coverage: &NegativeCoverage,
        stats: &mut SessionStats,
        user: &mut U,
        node: NodeId,
        radius: usize,
    ) -> Option<Word> {
        // The candidate words come from the shared per-snapshot word cache
        // (identical to enumerating the node's radius-bounded paths here).
        let prompt = validation::build_prompt_with(graph, node, radius, coverage, Some(exec))?;
        let chosen = user.validate_path(graph, node, &prompt.candidates, &prompt.suggested);
        stats.path_validations += 1;
        let word = if prompt.is_candidate(&chosen) {
            chosen
        } else {
            prompt.suggested.clone()
        };
        if word != prompt.suggested {
            stats.path_corrections += 1;
        }
        Some(word)
    }

    /// Runs the loop to completion and consumes the session state into a
    /// [`SessionOutcome`].
    pub fn run<S: Strategy<B> + ?Sized, U: User<B> + ?Sized>(
        &mut self,
        strategy: &mut S,
        user: &mut U,
    ) -> SessionOutcome {
        let halt_reason = loop {
            if let Some(reason) = self.step(strategy, user) {
                break reason;
            }
        };
        self.metrics
            .interactions_per_session
            .record(self.stats.interactions as u64);
        self.outcome(halt_reason)
    }

    /// Snapshots the session's observable state into a [`SessionOutcome`]
    /// with the given halt reason — what [`run`](Self::run) returns after the
    /// loop, and what a session manager returns when a client closes a
    /// session it drove step by step (possibly before any halt fired).
    pub fn outcome(&self, halt_reason: HaltReason) -> SessionOutcome {
        SessionOutcome {
            learned: self.hypothesis.clone(),
            halt_reason,
            stats: self.stats.clone(),
            transcript: self.transcript.clone(),
            examples: self.examples.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{DegreeStrategy, InformativePathsStrategy, RandomStrategy};
    use crate::user::SimulatedUser;
    use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
    use gps_rpq::PathQuery;

    fn goal(graph: &Graph) -> PathQuery {
        PathQuery::parse(MOTIVATING_QUERY, graph.labels()).unwrap()
    }

    #[test]
    fn session_converges_to_the_goal_on_figure1() {
        let (g, _) = figure1_graph();
        let goal = goal(&g);
        let mut user = SimulatedUser::new(goal.clone(), &g);
        let mut session = Session::new(&g, SessionConfig::default());
        let outcome = session.run(&mut InformativePathsStrategy::default(), &mut user);
        assert!(
            outcome.halt_reason.is_convergence(),
            "{:?}",
            outcome.halt_reason
        );
        let learned = outcome.learned.expect("a query was learned");
        assert_eq!(learned.answer.nodes(), goal.evaluate(&g).nodes());
        assert!(outcome.stats.interactions >= 1);
        assert!(outcome.stats.interactions <= g.node_count());
        assert_eq!(outcome.transcript.len(), outcome.stats.interactions);
    }

    #[test]
    fn all_strategies_converge_but_informative_needs_fewest_labels() {
        let (g, _) = figure1_graph();
        let goal = goal(&g);
        let run = |strategy: &mut dyn Strategy| {
            let mut user = SimulatedUser::new(goal.clone(), &g);
            let mut session = Session::new(&g, SessionConfig::default());
            session.run(strategy, &mut user)
        };
        let informative = run(&mut InformativePathsStrategy::default());
        let degree = run(&mut DegreeStrategy);
        let random = run(&mut RandomStrategy::seeded(3));
        for outcome in [&informative, &degree, &random] {
            assert!(outcome.halt_reason.is_convergence());
            let learned = outcome.learned.as_ref().unwrap();
            assert_eq!(learned.answer.nodes(), goal.evaluate(&g).nodes());
        }
        assert!(
            informative.stats.interactions <= random.stats.interactions,
            "informative ({}) should need no more labels than random ({})",
            informative.stats.interactions,
            random.stats.interactions
        );
    }

    #[test]
    fn zooms_happen_when_evidence_is_far() {
        let (g, _) = figure1_graph();
        let goal = goal(&g);
        let mut user = SimulatedUser::new(goal.clone(), &g);
        let mut session = Session::new(&g, SessionConfig::default());
        let outcome = session.run(&mut InformativePathsStrategy::default(), &mut user);
        // N2 requires a zoom (its witness has length 3); if it was proposed,
        // the zoom counter reflects it.
        if outcome
            .transcript
            .iter()
            .any(|r| g.node_name(r.node) == "N2")
        {
            assert!(outcome.stats.zooms >= 1);
        }
    }

    #[test]
    fn without_validation_may_learn_a_different_query() {
        let (g, _) = figure1_graph();
        let goal = goal(&g);
        let mut user = SimulatedUser::new(goal.clone(), &g);
        let mut session = Session::new(&g, SessionConfig::without_path_validation());
        let outcome = session.run(&mut InformativePathsStrategy::default(), &mut user);
        // The learned query is still consistent with the provided labels.
        let learned = outcome.learned.expect("learned something");
        for positive in outcome.examples.positives() {
            assert!(learned.answer.contains(positive));
        }
        for negative in outcome.examples.negatives() {
            assert!(!learned.answer.contains(negative));
        }
        assert_eq!(outcome.stats.path_validations, 0);
    }

    #[test]
    fn budget_halt_fires() {
        let (g, _) = figure1_graph();
        let goal = goal(&g);
        let mut user = SimulatedUser::new(goal, &g);
        let config = SessionConfig {
            halt: HaltConfig {
                max_interactions: 1,
                stop_on_goal: false,
            },
            ..SessionConfig::default()
        };
        let mut session = Session::new(&g, config);
        let outcome = session.run(&mut InformativePathsStrategy::default(), &mut user);
        assert_eq!(outcome.halt_reason, HaltReason::InteractionBudgetExhausted);
        assert_eq!(outcome.stats.interactions, 1);
    }

    #[test]
    fn step_by_step_api_exposes_intermediate_state() {
        let (g, _) = figure1_graph();
        let goal = goal(&g);
        let mut user = SimulatedUser::new(goal, &g);
        let mut strategy = InformativePathsStrategy::default();
        let mut session = Session::new(&g, SessionConfig::default());
        assert!(session.hypothesis().is_none());
        assert!(session.examples().is_empty());
        let halted = session.step(&mut strategy, &mut user);
        assert_eq!(session.stats().interactions, 1);
        assert_eq!(session.examples().len(), 1);
        if halted.is_none() {
            session.step(&mut strategy, &mut user);
            assert_eq!(session.stats().interactions, 2);
        }
        assert!(session.config().with_path_validation);
    }

    #[test]
    fn pruning_grows_monotonically() {
        let (g, _) = figure1_graph();
        let goal = goal(&g);
        let mut user = SimulatedUser::new(goal, &g);
        let mut session = Session::new(&g, SessionConfig::default());
        let outcome = session.run(&mut InformativePathsStrategy::default(), &mut user);
        for window in outcome.stats.pruned_after_interaction.windows(2) {
            assert!(window[0] <= window[1]);
        }
        // Facilities are pruned from the start, so the first entry is ≥ 4.
        assert!(outcome.stats.pruned_after_interaction[0] >= 4);
    }
}
