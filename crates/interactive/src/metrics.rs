//! Pre-bound telemetry handles for the interactive loop.
//!
//! [`SessionMetrics`] is resolved once against a
//! [`MetricsRegistry`](gps_telemetry::MetricsRegistry) and installed into a
//! [`Session`](crate::Session) via
//! [`Session::set_metrics`](crate::Session::set_metrics) (the engine and the
//! session manager do this when a registry is configured).  Metrics never
//! influence the loop's control flow, so an instrumented session produces a
//! byte-identical transcript to an uninstrumented one.

use gps_telemetry::{Counter, Histogram, MetricsRegistry};

/// The pruning sub-family (`gps_interactive_pruning_*`): how the
/// informativeness state is being kept up to date — cheap incremental delta
/// sweeps, full rescans, or the silent-and-slow foreign-snapshot fallback.
#[derive(Debug, Clone, Default)]
pub struct PruningMetrics {
    /// `gps_interactive_pruning_full_sweeps_total` — full informativeness
    /// rescans (first refresh, oversized deltas, foreign handles).
    pub full_sweeps: Counter,
    /// `gps_interactive_pruning_incremental_refreshes_total` — delta-sweep
    /// refreshes that avoided a rescan.
    pub incremental_refreshes: Counter,
    /// `gps_interactive_pruning_foreign_rescans_total` — full rescans forced
    /// by a mismatched evaluation handle; 0 in a correctly wired deployment.
    pub foreign_rescans: Counter,
}

impl PruningMetrics {
    /// All-disabled handles.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Binds the `gps_interactive_pruning_*` family in `registry`.
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        Self {
            full_sweeps: registry.counter("gps_interactive_pruning_full_sweeps_total"),
            incremental_refreshes: registry
                .counter("gps_interactive_pruning_incremental_refreshes_total"),
            foreign_rescans: registry.counter("gps_interactive_pruning_foreign_rescans_total"),
        }
    }
}

/// The interactive-loop metric family (`gps_interactive_*`).
#[derive(Debug, Clone, Default)]
pub struct SessionMetrics {
    /// `gps_interactive_interactions_total` — user interactions performed
    /// across all sessions.
    pub interactions: Counter,
    /// `gps_interactive_interactions_per_session` — dialogue length of each
    /// completed session (recorded when a session's run loop halts).
    pub interactions_per_session: Histogram,
    /// The pruning sub-family.
    pub pruning: PruningMetrics,
}

impl SessionMetrics {
    /// All-disabled handles.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Binds the `gps_interactive_*` family in `registry`.
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        Self {
            interactions: registry.counter("gps_interactive_interactions_total"),
            interactions_per_session: registry
                .histogram("gps_interactive_interactions_per_session"),
            pruning: PruningMetrics::from_registry(registry),
        }
    }
}
