//! Label propagation.
//!
//! After the user labels a node, GPS "seamlessly propagates to the rest of
//! the graph the labels provided by the user at this stage".  Two forms of
//! propagation are sound regardless of the goal query:
//!
//! * **Negative propagation** — a node whose every bounded word is covered by
//!   the negative examples can never be selected by a consistent query of
//!   bounded witness length, so it is an *implied negative*;
//! * **Positive propagation** — when the user validates a witness path for a
//!   positive node, every node that has the same word as an outgoing path is
//!   selected by any query accepting that word, so it is an *implied
//!   positive*.
//!
//! Implied labels are not added to the user's example set (they carry no new
//! information for the learner); they are reported so the UI can display them
//! and so the pruning layer can skip them.

use gps_graph::{GraphBackend, NodeId, PathEnumerator, Word};
use gps_learner::ExampleSet;
use gps_rpq::NegativeCoverage;

/// Labels implied by the user-provided examples.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PropagatedLabels {
    /// Nodes that no consistent bounded query can select.
    pub implied_negative: Vec<NodeId>,
    /// Nodes that every query accepting a validated positive word selects.
    pub implied_positive: Vec<NodeId>,
}

impl PropagatedLabels {
    /// Total number of implied labels.
    pub fn len(&self) -> usize {
        self.implied_negative.len() + self.implied_positive.len()
    }

    /// Returns `true` when nothing was propagated.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Computes the labels implied by `examples` on `graph`.
///
/// `coverage` must have been built from the same example set (its negatives).
pub fn propagate<B: GraphBackend>(
    graph: &B,
    examples: &ExampleSet,
    coverage: &NegativeCoverage,
    bound: usize,
) -> PropagatedLabels {
    let validated_words: Vec<Word> = examples
        .positives()
        .into_iter()
        .filter_map(|n| examples.validated_path(n).cloned())
        .collect();
    let enumerator = PathEnumerator::new(bound);

    let mut implied_negative = Vec::new();
    let mut implied_positive = Vec::new();
    for node in graph.nodes() {
        if examples.is_labeled(node) {
            continue;
        }
        if coverage.negative_count() > 0 && coverage.is_uninformative(graph, node) {
            implied_negative.push(node);
            continue;
        }
        if !validated_words.is_empty() {
            let words = enumerator.words_from(graph, node);
            if validated_words.iter().any(|w| words.contains(w)) {
                implied_positive.push(node);
            }
        }
    }
    PropagatedLabels {
        implied_negative,
        implied_positive,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::Graph;

    /// Two symmetric branches:
    /// A -x-> B -y-> C     D -x-> E -y-> F     G -z-> H
    fn sample() -> Graph {
        let mut g = Graph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let c = g.add_node("C");
        let d = g.add_node("D");
        let e = g.add_node("E");
        let f = g.add_node("F");
        let gg = g.add_node("G");
        let h = g.add_node("H");
        g.add_edge_by_name(a, "x", b);
        g.add_edge_by_name(b, "y", c);
        g.add_edge_by_name(d, "x", e);
        g.add_edge_by_name(e, "y", f);
        g.add_edge_by_name(gg, "z", h);
        g
    }

    #[test]
    fn validated_positive_word_propagates_to_twin_nodes() {
        let g = sample();
        let a = g.node_by_name("A").unwrap();
        let d = g.node_by_name("D").unwrap();
        let x = g.label_id("x").unwrap();
        let y = g.label_id("y").unwrap();
        let mut examples = ExampleSet::new();
        examples.set_validated_path(a, vec![x, y]);
        let coverage = NegativeCoverage::new(3);
        let propagated = propagate(&g, &examples, &coverage, 3);
        assert!(propagated.implied_positive.contains(&d));
        assert!(!propagated.implied_positive.contains(&a), "already labeled");
    }

    #[test]
    fn covered_nodes_become_implied_negatives() {
        let g = sample();
        let gg = g.node_by_name("G").unwrap();
        let a = g.node_by_name("A").unwrap();
        let mut examples = ExampleSet::new();
        // Labeling A negative covers x, x·y — D's words are then all covered.
        examples.add_negative(a);
        let coverage = NegativeCoverage::from_negatives(&g, [a], 3);
        let propagated = propagate(&g, &examples, &coverage, 3);
        let d = g.node_by_name("D").unwrap();
        assert!(propagated.implied_negative.contains(&d));
        // G spells z, which is uncovered, so it stays unresolved.
        assert!(!propagated.implied_negative.contains(&gg));
    }

    #[test]
    fn without_examples_nothing_is_propagated_to_path_nodes() {
        let g = sample();
        let examples = ExampleSet::new();
        let coverage = NegativeCoverage::new(3);
        let propagated = propagate(&g, &examples, &coverage, 3);
        // No negatives and no validated words: only the trivially
        // uninformative sinks would qualify, but negative propagation is
        // gated on having at least one negative example.
        assert!(propagated.implied_positive.is_empty());
        assert!(propagated.implied_negative.is_empty());
        assert!(propagated.is_empty());
    }

    #[test]
    fn counts_add_up() {
        let g = sample();
        let a = g.node_by_name("A").unwrap();
        let d = g.node_by_name("D").unwrap();
        let x = g.label_id("x").unwrap();
        let y = g.label_id("y").unwrap();
        let mut examples = ExampleSet::new();
        examples.set_validated_path(a, vec![x, y]);
        examples.add_negative(g.node_by_name("G").unwrap());
        let coverage = NegativeCoverage::from_negatives(&g, [g.node_by_name("G").unwrap()], 3);
        let propagated = propagate(&g, &examples, &coverage, 3);
        assert_eq!(
            propagated.len(),
            propagated.implied_negative.len() + propagated.implied_positive.len()
        );
        assert!(propagated.implied_positive.contains(&d));
    }
}
