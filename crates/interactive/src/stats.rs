//! Per-session statistics.
//!
//! The experiments of the paper measure the *number of interactions* needed
//! to reach the goal query, the time per interaction, and how quickly the
//! candidate set shrinks under pruning.  [`SessionStats`] collects all of
//! these during a run.

use serde::{Deserialize, Serialize};
use std::time::Duration;

/// Counters collected during an interactive session.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct SessionStats {
    /// Number of node-labeling interactions (each proposed node counts once,
    /// regardless of how many zooms it took).
    pub interactions: usize,
    /// Number of zoom-out requests across all interactions.
    pub zooms: usize,
    /// Number of positive labels given.
    pub positive_labels: usize,
    /// Number of negative labels given.
    pub negative_labels: usize,
    /// Number of path validations performed.
    pub path_validations: usize,
    /// Number of times the user corrected the suggested path (validated a
    /// different word than the suggestion).
    pub path_corrections: usize,
    /// Number of nodes pruned after each interaction (one entry per
    /// interaction).
    pub pruned_after_interaction: Vec<usize>,
    /// Wall-clock time spent inside the system (strategy, learning, pruning)
    /// — excludes simulated "user thinking" which is instantaneous here.
    #[serde(skip)]
    pub system_time: Duration,
    /// Wall-clock time of the single slowest interaction.
    #[serde(skip)]
    pub max_interaction_time: Duration,
}

impl SessionStats {
    /// Records the timing of one interaction.
    pub fn record_interaction_time(&mut self, elapsed: Duration) {
        self.system_time += elapsed;
        if elapsed > self.max_interaction_time {
            self.max_interaction_time = elapsed;
        }
    }

    /// Average system time per interaction.
    pub fn mean_interaction_time(&self) -> Duration {
        if self.interactions == 0 {
            Duration::ZERO
        } else {
            self.system_time / self.interactions as u32
        }
    }

    /// The fraction of graph nodes pruned after the last interaction, given
    /// the graph size.
    pub fn final_pruned_fraction(&self, node_count: usize) -> f64 {
        match (self.pruned_after_interaction.last(), node_count) {
            (Some(&pruned), n) if n > 0 => pruned as f64 / n as f64,
            _ => 0.0,
        }
    }

    /// One-line human-readable summary.
    pub fn summary(&self) -> String {
        format!(
            "interactions={} (+{} zooms) labels[+{} / -{}] validations={} (corrected {}) mean-time={:?}",
            self.interactions,
            self.zooms,
            self.positive_labels,
            self.negative_labels,
            self.path_validations,
            self.path_corrections,
            self.mean_interaction_time()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_stats_are_zero() {
        let stats = SessionStats::default();
        assert_eq!(stats.interactions, 0);
        assert_eq!(stats.mean_interaction_time(), Duration::ZERO);
        assert_eq!(stats.final_pruned_fraction(10), 0.0);
    }

    #[test]
    fn interaction_times_accumulate() {
        let mut stats = SessionStats {
            interactions: 2,
            ..Default::default()
        };
        stats.record_interaction_time(Duration::from_millis(10));
        stats.record_interaction_time(Duration::from_millis(30));
        assert_eq!(stats.system_time, Duration::from_millis(40));
        assert_eq!(stats.max_interaction_time, Duration::from_millis(30));
        assert_eq!(stats.mean_interaction_time(), Duration::from_millis(20));
    }

    #[test]
    fn pruned_fraction_uses_last_entry() {
        let stats = SessionStats {
            pruned_after_interaction: vec![2, 5, 8],
            ..Default::default()
        };
        assert!((stats.final_pruned_fraction(10) - 0.8).abs() < 1e-9);
        assert_eq!(stats.final_pruned_fraction(0), 0.0);
    }

    #[test]
    fn summary_mentions_the_counters() {
        let stats = SessionStats {
            interactions: 4,
            zooms: 2,
            positive_labels: 3,
            negative_labels: 1,
            path_validations: 3,
            path_corrections: 1,
            ..Default::default()
        };
        let text = stats.summary();
        assert!(text.contains("interactions=4"));
        assert!(text.contains("+3 / -1"));
        assert!(text.contains("corrected 1"));
    }

    #[test]
    fn serde_skips_durations() {
        let mut stats = SessionStats {
            interactions: 3,
            ..SessionStats::default()
        };
        stats.record_interaction_time(Duration::from_secs(1));
        let json = serde_json::to_string(&stats).unwrap();
        let back: SessionStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back.interactions, 3);
        assert_eq!(back.system_time, Duration::ZERO);
    }
}
