//! Halt conditions.
//!
//! The interactions continue "until a halt condition is satisfied".  The
//! natural condition is that every remaining node is uninformative (the
//! version space cannot shrink further); weaker conditions let the user stop
//! early when satisfied with an intermediate query, or bound the number of
//! interactions.

use serde::{Deserialize, Serialize};

/// Why a session stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HaltReason {
    /// No informative, unlabeled node remains — the strongest condition.
    AllNodesResolved,
    /// The user declared herself satisfied with the current candidate query.
    UserSatisfied,
    /// The interaction budget was exhausted.
    InteractionBudgetExhausted,
    /// The simulated goal query and the hypothesis agree on every node (only
    /// observable in simulation, where the goal is known).
    GoalReached,
    /// The client closed the session (service deployments only: a managed
    /// session was torn down before any halt condition fired).
    ClosedByClient,
}

impl HaltReason {
    /// Returns `true` when the session ended because learning genuinely
    /// converged (as opposed to running out of budget).
    pub fn is_convergence(self) -> bool {
        matches!(
            self,
            HaltReason::AllNodesResolved | HaltReason::GoalReached | HaltReason::UserSatisfied
        )
    }
}

/// Configuration of the halt conditions checked after every interaction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HaltConfig {
    /// Maximum number of label interactions before giving up.
    pub max_interactions: usize,
    /// Whether to stop as soon as the hypothesis answer equals the goal
    /// answer (simulation only; ignored when no goal is known).
    pub stop_on_goal: bool,
}

impl Default for HaltConfig {
    fn default() -> Self {
        Self {
            max_interactions: 200,
            stop_on_goal: true,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn convergence_classification() {
        assert!(HaltReason::AllNodesResolved.is_convergence());
        assert!(HaltReason::GoalReached.is_convergence());
        assert!(HaltReason::UserSatisfied.is_convergence());
        assert!(!HaltReason::InteractionBudgetExhausted.is_convergence());
        assert!(!HaltReason::ClosedByClient.is_convergence());
    }

    #[test]
    fn default_budget_is_generous() {
        let config = HaltConfig::default();
        assert!(config.max_interactions >= 100);
        assert!(config.stop_on_goal);
    }

    #[test]
    fn serde_round_trip() {
        let config = HaltConfig {
            max_interactions: 7,
            stop_on_goal: false,
        };
        let json = serde_json::to_string(&config).unwrap();
        let back: HaltConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.max_interactions, 7);
        assert!(!back.stop_on_goal);
        let reason_json = serde_json::to_string(&HaltReason::GoalReached).unwrap();
        let reason: HaltReason = serde_json::from_str(&reason_json).unwrap();
        assert_eq!(reason, HaltReason::GoalReached);
    }
}
