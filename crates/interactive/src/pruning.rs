//! Uninformative-node pruning.
//!
//! After each interaction GPS "prunes the uninformative nodes, i.e. those
//! that do not add any information about the user's goal query".  A node is
//! uninformative when every one of its (bounded) paths is covered by negative
//! examples — asking the user about it could not change the version space.
//! Labeled nodes are also never proposed again.
//!
//! [`PruningState`] maintains this set incrementally and exposes the numbers
//! the pruning-effectiveness experiment (E4) reports.
//!
//! Inside a session the state is kept up to date with
//! [`refresh_with`](PruningState::refresh_with): instead of re-enumerating
//! every node's bounded paths after each interaction, it reads the coverage's
//! word delta (the words newly covered since the last sync), asks the shared
//! evaluation stack which nodes spell any of them — one prefix-tree-acceptor
//! evaluation — and rescans only those.  The cached per-node uncovered-word
//! counts double as the informative-paths strategy's scores.

use crate::metrics::PruningMetrics;
use gps_graph::{GraphBackend, NodeId};
use gps_learner::ExampleSet;
use gps_rpq::{EvalHandle, NegativeCoverage};
use std::collections::BTreeSet;

/// Ceiling on the total size (states) of the word-delta acceptor the
/// incremental refresh evaluates; a pathological delta (a negative hub with
/// an enormous bounded language) falls back to the full rescan instead of
/// building an oversized product.
const DELTA_ACCEPTOR_STATE_CAP: usize = 50_000;

/// The set of nodes that should no longer be proposed to the user.
#[derive(Debug, Clone)]
pub struct PruningState {
    pruned: BTreeSet<NodeId>,
    bound: usize,
    /// Per-node uncovered-word counts (`coverage.uncovered_count`), valid
    /// for the coverage version in `synced`.  A node is
    /// coverage-uninformative iff its entry is 0.
    scores: Vec<usize>,
    /// The coverage `(log_identity, version)` the scores were last
    /// synchronized against, `None` before the first refresh.  The identity
    /// lets the incremental refresh and the strategy detect a *different*
    /// coverage object (whose delta would be meaningless here) instead of
    /// trusting a bare version number.
    synced: Option<(u64, u64)>,
    /// How many times [`refresh_with`](Self::refresh_with) had a valid
    /// coverage delta but had to fall back to the full rescan because the
    /// evaluation handle's snapshot did not match the session graph (a
    /// foreign or superseded snapshot).  This fallback is silent and slow —
    /// surfacing it as a counter makes a misrouted handle measurable instead
    /// of just "sessions feel slower".
    foreign_rescans: u64,
    /// Telemetry handles (all disabled by default — one branch per event).
    /// The session installs registry-backed handles via
    /// [`set_metrics`](Self::set_metrics); they never affect which nodes get
    /// pruned.
    metrics: PruningMetrics,
}

impl PruningState {
    /// Creates a pruning state with the given path-length bound (the same
    /// bound the learner and the coverage use).
    pub fn new(bound: usize) -> Self {
        Self {
            pruned: BTreeSet::new(),
            bound,
            scores: Vec::new(),
            synced: None,
            foreign_rescans: 0,
            metrics: PruningMetrics::disabled(),
        }
    }

    /// Installs telemetry handles (see [`PruningMetrics`]); observational
    /// only — the pruned set evolves identically with or without them.
    pub fn set_metrics(&mut self, metrics: PruningMetrics) {
        self.metrics = metrics;
    }

    /// The path-length bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// The coverage version the cached scores are synchronized to, if any.
    pub fn synced_version(&self) -> Option<u64> {
        self.synced.map(|(_, version)| version)
    }

    /// Number of full rescans forced by a foreign-snapshot evaluation handle
    /// (see the field docs) — 0 in a correctly wired deployment.
    pub fn foreign_rescans(&self) -> u64 {
        self.foreign_rescans
    }

    /// Returns `true` when the cached scores are synchronized with exactly
    /// this coverage's log lineage and version — the condition under which
    /// [`cached_score`](Self::cached_score) equals
    /// `coverage.uncovered_count` for every node.
    pub fn is_synced_to(&self, coverage: &NegativeCoverage) -> bool {
        self.synced == Some((coverage.log_identity(), coverage.version()))
    }

    /// The cached uncovered-word count of `node`, when the state has been
    /// refreshed.  Only meaningful for the coverage the state was refreshed
    /// with (check [`is_synced_to`](Self::is_synced_to) before trusting it).
    pub fn cached_score(&self, node: NodeId) -> Option<usize> {
        self.synced?;
        self.scores.get(node.index()).copied()
    }

    /// Recomputes the pruned set from scratch: labeled nodes plus nodes that
    /// are uninformative under the current negative coverage.  Returns the
    /// number of *newly* pruned nodes.
    pub fn refresh<B: GraphBackend>(
        &mut self,
        graph: &B,
        examples: &ExampleSet,
        coverage: &NegativeCoverage,
    ) -> usize {
        let before = self.pruned.len();
        self.full_rescan(graph, coverage);
        self.prune_labeled(examples);
        self.pruned.len() - before
    }

    /// Incremental refresh for sessions: identical resulting state to
    /// [`refresh`](Self::refresh), but after the first (full) scan each call
    /// only rescans the nodes that spell a word covered since the previous
    /// call — computed in one acceptor evaluation on the shared stack —
    /// plus the newly labeled nodes.
    pub fn refresh_with<B: GraphBackend>(
        &mut self,
        graph: &B,
        examples: &ExampleSet,
        coverage: &NegativeCoverage,
        exec: &EvalHandle,
    ) -> usize {
        let before = self.pruned.len();
        let identity = coverage.log_identity();
        let version = coverage.version();
        let scores_current = self.scores.len() == graph.node_count();
        // The delta sweep runs on the handle's snapshot, so its node ids are
        // only meaningful here when that snapshot matches this graph — same
        // node count *and* same epoch, so a superseded snapshot of a live
        // store is never mistaken for the session's pinned one.  A foreign
        // handle falls back to the full rescan like everywhere else, and the
        // fallback is counted (see [`foreign_rescans`](Self::foreign_rescans)).
        let exec_matches = exec.cache().csr().node_count() == graph.node_count()
            && exec.cache().epoch() == graph.epoch();
        if !exec_matches
            && matches!(self.synced, Some((id, v)) if id == identity && v < version && scores_current)
        {
            self.foreign_rescans += 1;
            self.metrics.foreign_rescans.inc();
        }
        match self.synced {
            Some((id, v)) if id == identity && v == version && scores_current => {}
            Some((id, v)) if id == identity && v < version && scores_current && exec_matches => {
                let fresh = coverage.covered_since(v);
                let trie_states: usize = fresh.iter().map(|w| w.len()).sum::<usize>() + 1;
                if trie_states > DELTA_ACCEPTOR_STATE_CAP {
                    self.full_rescan(graph, coverage);
                } else {
                    // A node's uncovered count drops by exactly the number
                    // of newly covered words it spells — one engine sweep,
                    // no path re-enumeration.  Already-pruned nodes are
                    // decremented too, keeping every cached score accurate.
                    for (node, count) in exec.spelling_counts(fresh) {
                        let score = self.scores[node.index()].saturating_sub(count as usize);
                        self.scores[node.index()] = score;
                        if score == 0 {
                            self.pruned.insert(node);
                        }
                    }
                    self.synced = Some((identity, version));
                    self.metrics.incremental_refreshes.inc();
                }
            }
            // First refresh, or a coverage/graph this state has never been
            // synchronized against: rebuild everything.  With no covered
            // word yet, every node's uncovered count is its bounded-word
            // count — served from the stack's shared per-snapshot baseline
            // instead of re-enumerating the whole graph per session.
            _ => {
                let baseline = (coverage.version() == 0 && exec_matches)
                    .then(|| exec.bounded_word_counts(coverage.bound()))
                    .filter(|baseline| baseline.len() == graph.node_count());
                match baseline {
                    Some(baseline) => {
                        self.scores = (*baseline).clone();
                        for (index, &score) in self.scores.iter().enumerate() {
                            if score == 0 {
                                self.pruned.insert(NodeId::from(index));
                            }
                        }
                        self.synced = Some((identity, 0));
                    }
                    None => self.full_rescan(graph, coverage),
                }
            }
        }
        self.prune_labeled(examples);
        self.pruned.len() - before
    }

    fn full_rescan<B: GraphBackend>(&mut self, graph: &B, coverage: &NegativeCoverage) {
        self.metrics.full_sweeps.inc();
        let n = graph.node_count();
        self.scores = vec![0; n];
        for node in graph.nodes() {
            let score = coverage.uncovered_count(graph, node);
            self.scores[node.index()] = score;
            if score == 0 {
                self.pruned.insert(node);
            }
        }
        self.synced = Some((coverage.log_identity(), coverage.version()));
    }

    fn prune_labeled(&mut self, examples: &ExampleSet) {
        for (node, _) in examples.iter() {
            self.pruned.insert(node);
        }
    }

    /// Marks a single node as pruned (used when the user labels it).
    pub fn prune(&mut self, node: NodeId) -> bool {
        self.pruned.insert(node)
    }

    /// Returns `true` when `node` has been pruned.
    pub fn is_pruned(&self, node: NodeId) -> bool {
        self.pruned.contains(&node)
    }

    /// Number of pruned nodes.
    pub fn pruned_count(&self) -> usize {
        self.pruned.len()
    }

    /// The nodes that may still be proposed to the user, in id order.
    pub fn candidates<'a, B: GraphBackend>(
        &'a self,
        graph: &'a B,
    ) -> impl Iterator<Item = NodeId> + 'a {
        graph.nodes().filter(move |n| !self.is_pruned(*n))
    }

    /// Number of candidate (not yet pruned) nodes.
    pub fn candidate_count<B: GraphBackend>(&self, graph: &B) -> usize {
        self.candidates(graph).count()
    }

    /// Fraction of the graph's nodes that has been pruned (0.0 for an empty
    /// graph).
    pub fn pruned_fraction<B: GraphBackend>(&self, graph: &B) -> f64 {
        if graph.node_count() == 0 {
            0.0
        } else {
            self.pruned_count() as f64 / graph.node_count() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::Graph;

    /// N5 -bus-> N6 -cinema-> C2; N5 -restaurant-> R2; N8 isolated.
    fn sample() -> Graph {
        let mut g = Graph::new();
        let n5 = g.add_node("N5");
        let n6 = g.add_node("N6");
        let c2 = g.add_node("C2");
        let r2 = g.add_node("R2");
        let _n8 = g.add_node("N8");
        g.add_edge_by_name(n5, "bus", n6);
        g.add_edge_by_name(n6, "cinema", c2);
        g.add_edge_by_name(n5, "restaurant", r2);
        g
    }

    #[test]
    fn sinks_are_pruned_immediately() {
        let g = sample();
        let mut pruning = PruningState::new(3);
        let examples = ExampleSet::new();
        let coverage = NegativeCoverage::new(3);
        let newly = pruning.refresh(&g, &examples, &coverage);
        // C2, R2 and the isolated N8 have no outgoing paths.
        assert_eq!(newly, 3);
        assert!(pruning.is_pruned(g.node_by_name("C2").unwrap()));
        assert!(pruning.is_pruned(g.node_by_name("N8").unwrap()));
        assert!(!pruning.is_pruned(g.node_by_name("N5").unwrap()));
        assert_eq!(pruning.candidate_count(&g), 2);
    }

    #[test]
    fn labeled_nodes_are_pruned() {
        let g = sample();
        let mut pruning = PruningState::new(3);
        let mut examples = ExampleSet::new();
        let n5 = g.node_by_name("N5").unwrap();
        examples.add_positive(n5);
        let coverage = NegativeCoverage::new(3);
        pruning.refresh(&g, &examples, &coverage);
        assert!(pruning.is_pruned(n5));
    }

    #[test]
    fn negatives_make_covered_nodes_uninformative() {
        let g = sample();
        let n5 = g.node_by_name("N5").unwrap();
        let n6 = g.node_by_name("N6").unwrap();
        let mut examples = ExampleSet::new();
        examples.add_negative(n5);
        let coverage = NegativeCoverage::from_negatives(&g, [n5], 3);
        let mut pruning = PruningState::new(3);
        pruning.refresh(&g, &examples, &coverage);
        // N5 is labeled; its words cover bus·cinema but NOT cinema, so N6
        // stays informative.
        assert!(pruning.is_pruned(n5));
        assert!(!pruning.is_pruned(n6));
        // Once N6 is also covered (label it negative too), nothing is left.
        let coverage2 = NegativeCoverage::from_negatives(&g, [n5, n6], 3);
        let mut examples2 = ExampleSet::new();
        examples2.add_negative(n5);
        examples2.add_negative(n6);
        let mut pruning2 = PruningState::new(3);
        pruning2.refresh(&g, &examples2, &coverage2);
        assert_eq!(pruning2.candidate_count(&g), 0);
        assert!((pruning2.pruned_fraction(&g) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn incremental_refresh_matches_full_rescan() {
        let g = sample();
        let exec = gps_rpq::EvalHandle::naive(&g);
        let n5 = g.node_by_name("N5").unwrap();
        let n6 = g.node_by_name("N6").unwrap();

        let mut full = PruningState::new(3);
        let mut incremental = PruningState::new(3);
        let mut examples = ExampleSet::new();
        let mut coverage = NegativeCoverage::new(3);

        // Replay a small session: initial scan, then a positive whose node
        // also spells later-covered words, then two negatives.
        for step in 0..4 {
            if step == 1 {
                examples.add_positive(n6);
            }
            if step == 2 {
                examples.add_negative(n5);
                coverage.add_negative(&g, n5);
            }
            if step == 3 {
                examples.add_negative(n6);
                coverage.add_negative(&g, n6);
            }
            let newly_full = full.refresh(&g, &examples, &coverage);
            let newly_inc = incremental.refresh_with(&g, &examples, &coverage, &exec);
            assert_eq!(newly_full, newly_inc, "step {step}");
            for node in g.nodes() {
                assert_eq!(
                    full.is_pruned(node),
                    incremental.is_pruned(node),
                    "step {step}, node {node}"
                );
                assert_eq!(
                    incremental.cached_score(node),
                    Some(coverage.uncovered_count(&g, node)),
                    "step {step}, node {node}"
                );
            }
            assert_eq!(incremental.synced_version(), Some(coverage.version()));
        }
    }

    #[test]
    fn foreign_coverage_forces_a_full_rescan_not_a_delta() {
        let g = sample();
        let exec = gps_rpq::EvalHandle::naive(&g);
        let n5 = g.node_by_name("N5").unwrap();
        let n6 = g.node_by_name("N6").unwrap();
        let examples = ExampleSet::new();
        // Sync against coverage A (empty), then refresh with an unrelated
        // coverage B at a higher version: B's delta must not be applied to
        // A-synced scores — the state rescans and matches B exactly.
        let a = NegativeCoverage::new(3);
        let mut pruning = PruningState::new(3);
        pruning.refresh_with(&g, &examples, &a, &exec);
        assert!(pruning.is_synced_to(&a));
        let b = NegativeCoverage::from_negatives(&g, [n5], 3);
        assert!(!pruning.is_synced_to(&b));
        pruning.refresh_with(&g, &examples, &b, &exec);
        assert!(pruning.is_synced_to(&b));
        for node in g.nodes() {
            assert_eq!(
                pruning.cached_score(node),
                Some(b.uncovered_count(&g, node)),
                "node {node}"
            );
        }
        // A clone shares the log lineage, so its future deltas are valid.
        let mut c = b.clone();
        assert!(pruning.is_synced_to(&c));
        c.add_negative(&g, n6);
        assert!(!pruning.is_synced_to(&c), "clone advanced past the sync");
        pruning.refresh_with(&g, &examples, &c, &exec);
        assert!(pruning.is_synced_to(&c));
        assert_eq!(pruning.cached_score(n6), Some(0), "cinema is now covered");
    }

    #[test]
    fn foreign_snapshot_handle_falls_back_to_full_rescan() {
        // A handle over a *larger* graph: its delta sweep returns node ids
        // that do not exist here, so the incremental arm must not run (it
        // would index out of bounds); the state rescans locally instead.
        let g = sample();
        let mut big = Graph::new();
        for i in 0..8 {
            big.add_node(format!("B{i}").as_str());
        }
        for i in 0..7usize {
            let from = big.node_by_name(&format!("B{i}")).unwrap();
            let to = big.node_by_name(&format!("B{}", i + 1)).unwrap();
            big.add_edge_by_name(from, "bus", to);
        }
        let foreign = gps_rpq::EvalHandle::naive(&big);
        let n5 = g.node_by_name("N5").unwrap();
        let examples = ExampleSet::new();
        let mut coverage = NegativeCoverage::new(3);
        let mut pruning = PruningState::new(3);
        pruning.refresh_with(&g, &examples, &coverage, &foreign);
        assert_eq!(
            pruning.foreign_rescans(),
            0,
            "the first refresh is always a full scan — not a fallback"
        );
        coverage.add_negative(&g, n5);
        pruning.refresh_with(&g, &examples, &coverage, &foreign);
        assert_eq!(
            pruning.foreign_rescans(),
            1,
            "a valid delta was available but the handle's snapshot is foreign"
        );
        for node in g.nodes() {
            assert_eq!(
                pruning.cached_score(node),
                Some(coverage.uncovered_count(&g, node)),
                "node {node}"
            );
        }
        // A matching handle keeps the delta path counter-free.
        let local = gps_rpq::EvalHandle::naive(&g);
        let n6 = g.node_by_name("N6").unwrap();
        coverage.add_negative(&g, n6);
        pruning.refresh_with(&g, &examples, &coverage, &local);
        assert_eq!(pruning.foreign_rescans(), 1, "no new fallback");
    }

    #[test]
    fn superseded_epoch_handle_is_foreign_even_at_equal_node_count() {
        use gps_graph::CsrGraph;
        use std::sync::Arc;

        // Same node count, different epoch: the handle's snapshot pretends to
        // be a newer published version of this graph — its spelling sweeps
        // must not be trusted for delta decrements.
        let g = sample();
        let session_graph = CsrGraph::from_graph(&g); // epoch 0
        let newer = CsrGraph::from_graph(&g).with_epoch(1);
        let handle = gps_rpq::EvalHandle::from_cache(Arc::new(gps_rpq::EvalCache::from_csr(newer)));
        let n5 = session_graph.node_by_name("N5").unwrap();
        let examples = ExampleSet::new();
        let mut coverage = NegativeCoverage::new(3);
        let mut pruning = PruningState::new(3);
        pruning.refresh_with(&session_graph, &examples, &coverage, &handle);
        coverage.add_negative(&session_graph, n5);
        pruning.refresh_with(&session_graph, &examples, &coverage, &handle);
        assert_eq!(pruning.foreign_rescans(), 1);
        for node in session_graph.nodes() {
            assert_eq!(
                pruning.cached_score(node),
                Some(coverage.uncovered_count(&session_graph, node)),
                "node {node}"
            );
        }
    }

    #[test]
    fn unsynced_state_reports_no_cached_scores() {
        let g = sample();
        let pruning = PruningState::new(3);
        assert_eq!(pruning.synced_version(), None);
        assert_eq!(pruning.cached_score(g.node_by_name("N5").unwrap()), None);
    }

    #[test]
    fn manual_prune_and_counters() {
        let g = sample();
        let mut pruning = PruningState::new(2);
        assert_eq!(pruning.bound(), 2);
        assert!(pruning.prune(g.node_by_name("N5").unwrap()));
        assert!(!pruning.prune(g.node_by_name("N5").unwrap()));
        assert_eq!(pruning.pruned_count(), 1);
        assert!(pruning.pruned_fraction(&g) > 0.0);
    }

    #[test]
    fn empty_graph_fraction_is_zero() {
        let g = Graph::new();
        let pruning = PruningState::new(2);
        assert_eq!(pruning.pruned_fraction(&g), 0.0);
        assert_eq!(pruning.candidate_count(&g), 0);
    }
}
