//! Uninformative-node pruning.
//!
//! After each interaction GPS "prunes the uninformative nodes, i.e. those
//! that do not add any information about the user's goal query".  A node is
//! uninformative when every one of its (bounded) paths is covered by negative
//! examples — asking the user about it could not change the version space.
//! Labeled nodes are also never proposed again.
//!
//! [`PruningState`] maintains this set incrementally and exposes the numbers
//! the pruning-effectiveness experiment (E4) reports.

use gps_graph::{GraphBackend, NodeId};
use gps_learner::ExampleSet;
use gps_rpq::NegativeCoverage;
use std::collections::BTreeSet;

/// The set of nodes that should no longer be proposed to the user.
#[derive(Debug, Clone)]
pub struct PruningState {
    pruned: BTreeSet<NodeId>,
    bound: usize,
}

impl PruningState {
    /// Creates a pruning state with the given path-length bound (the same
    /// bound the learner and the coverage use).
    pub fn new(bound: usize) -> Self {
        Self {
            pruned: BTreeSet::new(),
            bound,
        }
    }

    /// The path-length bound.
    pub fn bound(&self) -> usize {
        self.bound
    }

    /// Recomputes the pruned set from scratch: labeled nodes plus nodes that
    /// are uninformative under the current negative coverage.  Returns the
    /// number of *newly* pruned nodes.
    pub fn refresh<B: GraphBackend>(
        &mut self,
        graph: &B,
        examples: &ExampleSet,
        coverage: &NegativeCoverage,
    ) -> usize {
        let before = self.pruned.len();
        for node in graph.nodes() {
            if examples.is_labeled(node) || coverage.is_uninformative(graph, node) {
                self.pruned.insert(node);
            }
        }
        self.pruned.len() - before
    }

    /// Marks a single node as pruned (used when the user labels it).
    pub fn prune(&mut self, node: NodeId) -> bool {
        self.pruned.insert(node)
    }

    /// Returns `true` when `node` has been pruned.
    pub fn is_pruned(&self, node: NodeId) -> bool {
        self.pruned.contains(&node)
    }

    /// Number of pruned nodes.
    pub fn pruned_count(&self) -> usize {
        self.pruned.len()
    }

    /// The nodes that may still be proposed to the user, in id order.
    pub fn candidates<'a, B: GraphBackend>(
        &'a self,
        graph: &'a B,
    ) -> impl Iterator<Item = NodeId> + 'a {
        graph.nodes().filter(move |n| !self.is_pruned(*n))
    }

    /// Number of candidate (not yet pruned) nodes.
    pub fn candidate_count<B: GraphBackend>(&self, graph: &B) -> usize {
        self.candidates(graph).count()
    }

    /// Fraction of the graph's nodes that has been pruned (0.0 for an empty
    /// graph).
    pub fn pruned_fraction<B: GraphBackend>(&self, graph: &B) -> f64 {
        if graph.node_count() == 0 {
            0.0
        } else {
            self.pruned_count() as f64 / graph.node_count() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::Graph;

    /// N5 -bus-> N6 -cinema-> C2; N5 -restaurant-> R2; N8 isolated.
    fn sample() -> Graph {
        let mut g = Graph::new();
        let n5 = g.add_node("N5");
        let n6 = g.add_node("N6");
        let c2 = g.add_node("C2");
        let r2 = g.add_node("R2");
        let _n8 = g.add_node("N8");
        g.add_edge_by_name(n5, "bus", n6);
        g.add_edge_by_name(n6, "cinema", c2);
        g.add_edge_by_name(n5, "restaurant", r2);
        g
    }

    #[test]
    fn sinks_are_pruned_immediately() {
        let g = sample();
        let mut pruning = PruningState::new(3);
        let examples = ExampleSet::new();
        let coverage = NegativeCoverage::new(3);
        let newly = pruning.refresh(&g, &examples, &coverage);
        // C2, R2 and the isolated N8 have no outgoing paths.
        assert_eq!(newly, 3);
        assert!(pruning.is_pruned(g.node_by_name("C2").unwrap()));
        assert!(pruning.is_pruned(g.node_by_name("N8").unwrap()));
        assert!(!pruning.is_pruned(g.node_by_name("N5").unwrap()));
        assert_eq!(pruning.candidate_count(&g), 2);
    }

    #[test]
    fn labeled_nodes_are_pruned() {
        let g = sample();
        let mut pruning = PruningState::new(3);
        let mut examples = ExampleSet::new();
        let n5 = g.node_by_name("N5").unwrap();
        examples.add_positive(n5);
        let coverage = NegativeCoverage::new(3);
        pruning.refresh(&g, &examples, &coverage);
        assert!(pruning.is_pruned(n5));
    }

    #[test]
    fn negatives_make_covered_nodes_uninformative() {
        let g = sample();
        let n5 = g.node_by_name("N5").unwrap();
        let n6 = g.node_by_name("N6").unwrap();
        let mut examples = ExampleSet::new();
        examples.add_negative(n5);
        let coverage = NegativeCoverage::from_negatives(&g, [n5], 3);
        let mut pruning = PruningState::new(3);
        pruning.refresh(&g, &examples, &coverage);
        // N5 is labeled; its words cover bus·cinema but NOT cinema, so N6
        // stays informative.
        assert!(pruning.is_pruned(n5));
        assert!(!pruning.is_pruned(n6));
        // Once N6 is also covered (label it negative too), nothing is left.
        let coverage2 = NegativeCoverage::from_negatives(&g, [n5, n6], 3);
        let mut examples2 = ExampleSet::new();
        examples2.add_negative(n5);
        examples2.add_negative(n6);
        let mut pruning2 = PruningState::new(3);
        pruning2.refresh(&g, &examples2, &coverage2);
        assert_eq!(pruning2.candidate_count(&g), 0);
        assert!((pruning2.pruned_fraction(&g) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn manual_prune_and_counters() {
        let g = sample();
        let mut pruning = PruningState::new(2);
        assert_eq!(pruning.bound(), 2);
        assert!(pruning.prune(g.node_by_name("N5").unwrap()));
        assert!(!pruning.prune(g.node_by_name("N5").unwrap()));
        assert_eq!(pruning.pruned_count(), 1);
        assert!(pruning.pruned_fraction(&g) > 0.0);
    }

    #[test]
    fn empty_graph_fraction_is_zero() {
        let g = Graph::new();
        let pruning = PruningState::new(2);
        assert_eq!(pruning.pruned_fraction(&g), 0.0);
        assert_eq!(pruning.candidate_count(&g), 0);
    }
}
