//! Node-proposal strategies `Υ`.
//!
//! A strategy is "a function that takes as input a graph G and a set of
//! examples S, and returns a node from G".  The paper asks for strategies
//! that are time-efficient and minimize the number of interactions, and its
//! practical strategy "seeks the nodes having an important number of paths
//! that are shorter than a fixed bound and not covered by any negative node".
//!
//! Three strategies are provided:
//!
//! * [`RandomStrategy`] — the baseline: a uniformly random candidate;
//! * [`DegreeStrategy`] — a cheap structural heuristic: highest out-degree
//!   first;
//! * [`InformativePathsStrategy`] — the paper's strategy: the candidate with
//!   the most short uncovered paths.

use crate::pruning::PruningState;
use gps_graph::{Graph, GraphBackend, NodeId};
use gps_learner::ExampleSet;
use gps_rpq::NegativeCoverage;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Everything a strategy may look at when choosing the next node.
///
/// Generic over the [`GraphBackend`] the session runs on; defaults to the
/// mutable [`Graph`] so existing call sites read naturally.
#[derive(Debug, Clone, Copy)]
pub struct StrategyContext<'a, B: GraphBackend = Graph> {
    /// The graph database.
    pub graph: &'a B,
    /// The examples collected so far.
    pub examples: &'a ExampleSet,
    /// The coverage induced by the negative examples.
    pub coverage: &'a NegativeCoverage,
    /// The pruning state (nodes that must not be proposed).
    pub pruning: &'a PruningState,
}

/// A node-proposal strategy over backend `B` (defaults to [`Graph`]).
///
/// The provided strategies implement `Strategy<B>` for every backend, so one
/// strategy value can drive sessions on the mutable graph and on CSR
/// snapshots alike.
pub trait Strategy<B: GraphBackend = Graph> {
    /// A short name used in experiment reports.
    fn name(&self) -> &'static str;

    /// Proposes the next node to label, or `None` when every node is either
    /// labeled or pruned.
    fn propose(&mut self, ctx: &StrategyContext<'_, B>) -> Option<NodeId>;
}

fn candidates<B: GraphBackend>(ctx: &StrategyContext<'_, B>) -> Vec<NodeId> {
    ctx.graph
        .nodes()
        .filter(|&n| !ctx.pruning.is_pruned(n) && !ctx.examples.is_labeled(n))
        .collect()
}

/// Proposes a uniformly random unlabeled, unpruned node.
#[derive(Debug, Clone)]
pub struct RandomStrategy {
    rng: StdRng,
}

impl RandomStrategy {
    /// Creates a random strategy with an explicit seed (for reproducible
    /// experiments).
    pub fn seeded(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Default for RandomStrategy {
    fn default() -> Self {
        Self::seeded(0)
    }
}

impl<B: GraphBackend> Strategy<B> for RandomStrategy {
    fn name(&self) -> &'static str {
        "random"
    }

    fn propose(&mut self, ctx: &StrategyContext<'_, B>) -> Option<NodeId> {
        let candidates = candidates(ctx);
        if candidates.is_empty() {
            return None;
        }
        Some(candidates[self.rng.gen_range(0..candidates.len())])
    }
}

/// Proposes the candidate with the highest out-degree (ties broken by node
/// id).  Cheap but oblivious to the labels collected so far.
#[derive(Debug, Clone, Default)]
pub struct DegreeStrategy;

impl<B: GraphBackend> Strategy<B> for DegreeStrategy {
    fn name(&self) -> &'static str {
        "degree"
    }

    fn propose(&mut self, ctx: &StrategyContext<'_, B>) -> Option<NodeId> {
        candidates(ctx)
            .into_iter()
            .max_by_key(|&n| (ctx.graph.out_degree(n), std::cmp::Reverse(n)))
    }
}

/// The paper's practical strategy: proposes the candidate with the largest
/// number of short paths not covered by any negative example.
#[derive(Debug, Clone)]
pub struct InformativePathsStrategy {
    /// Path-length bound used when counting uncovered paths.
    pub bound: usize,
}

impl Default for InformativePathsStrategy {
    fn default() -> Self {
        Self { bound: 3 }
    }
}

impl InformativePathsStrategy {
    /// Creates the strategy with an explicit path-length bound.
    pub fn with_bound(bound: usize) -> Self {
        Self { bound }
    }

    /// The informativeness score of a node: its number of uncovered words up
    /// to the bound.
    pub fn score<B: GraphBackend>(&self, ctx: &StrategyContext<'_, B>, node: NodeId) -> usize {
        ctx.coverage.uncovered_count(ctx.graph, node)
    }
}

impl<B: GraphBackend> Strategy<B> for InformativePathsStrategy {
    fn name(&self) -> &'static str {
        "informative-paths"
    }

    fn propose(&mut self, ctx: &StrategyContext<'_, B>) -> Option<NodeId> {
        // When the pruning state has been refreshed against this exact
        // coverage (lineage and version), its per-node uncovered counts are
        // the scores — read them instead of re-enumerating every
        // candidate's paths.
        let cached = ctx.pruning.is_synced_to(ctx.coverage);
        candidates(ctx)
            .into_iter()
            .map(|n| {
                let score = if cached {
                    ctx.pruning.cached_score(n)
                } else {
                    None
                }
                .unwrap_or_else(|| self.score(ctx, n));
                (score, n)
            })
            .filter(|&(score, _)| score > 0)
            .max_by_key(|&(score, n)| (score, std::cmp::Reverse(n)))
            .map(|(_, n)| n)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_datasets::figure1::figure1_graph;

    fn context<'a>(
        graph: &'a Graph,
        examples: &'a ExampleSet,
        coverage: &'a NegativeCoverage,
        pruning: &'a PruningState,
    ) -> StrategyContext<'a> {
        StrategyContext {
            graph,
            examples,
            coverage,
            pruning,
        }
    }

    #[test]
    fn strategies_skip_labeled_and_pruned_nodes() {
        let (g, ids) = figure1_graph();
        let mut examples = ExampleSet::new();
        examples.add_positive(ids.n2);
        let coverage = NegativeCoverage::new(3);
        let mut pruning = PruningState::new(3);
        pruning.prune(ids.n1);
        let ctx = context(&g, &examples, &coverage, &pruning);
        for strategy in [
            &mut RandomStrategy::seeded(1) as &mut dyn Strategy,
            &mut DegreeStrategy as &mut dyn Strategy,
            &mut InformativePathsStrategy::default() as &mut dyn Strategy,
        ] {
            for _ in 0..5 {
                let proposal = strategy.propose(&ctx).unwrap();
                assert_ne!(
                    proposal,
                    ids.n2,
                    "{} proposed a labeled node",
                    strategy.name()
                );
                assert_ne!(
                    proposal,
                    ids.n1,
                    "{} proposed a pruned node",
                    strategy.name()
                );
            }
        }
    }

    #[test]
    fn degree_strategy_prefers_hubs() {
        let (g, ids) = figure1_graph();
        let examples = ExampleSet::new();
        let coverage = NegativeCoverage::new(3);
        let pruning = PruningState::new(3);
        let ctx = context(&g, &examples, &coverage, &pruning);
        let proposal = DegreeStrategy.propose(&ctx).unwrap();
        // N2 has out-degree 3 (bus, bus, restaurant), the maximum in Figure 1
        // together with N5; ties break towards the smaller id, which is N2.
        assert_eq!(proposal, ids.n2);
    }

    #[test]
    fn informative_strategy_prefers_nodes_with_many_uncovered_paths() {
        let (g, ids) = figure1_graph();
        let examples = ExampleSet::new();
        let coverage = NegativeCoverage::new(3);
        let pruning = PruningState::new(3);
        let ctx = context(&g, &examples, &coverage, &pruning);
        let mut strategy = InformativePathsStrategy::default();
        let proposal = strategy.propose(&ctx).unwrap();
        // The proposal has the maximum score among all nodes.
        let best_score = g.nodes().map(|n| strategy.score(&ctx, n)).max().unwrap();
        assert_eq!(strategy.score(&ctx, proposal), best_score);
        assert!(best_score > 0);
        // Facility nodes score zero.
        assert_eq!(strategy.score(&ctx, ids.c1), 0);
    }

    #[test]
    fn informative_strategy_returns_none_when_all_paths_covered() {
        let (g, ids) = figure1_graph();
        // Label every transport node negative: everything is covered.
        let negatives = [ids.n1, ids.n2, ids.n3, ids.n4, ids.n5, ids.n6];
        let mut examples = ExampleSet::new();
        for n in negatives {
            examples.add_negative(n);
        }
        let coverage = NegativeCoverage::from_negatives(&g, negatives, 3);
        let mut pruning = PruningState::new(3);
        pruning.refresh(&g, &examples, &coverage);
        let ctx = context(&g, &examples, &coverage, &pruning);
        assert_eq!(InformativePathsStrategy::default().propose(&ctx), None);
    }

    #[test]
    fn cached_scores_propose_the_same_node_as_direct_scoring() {
        let (g, ids) = figure1_graph();
        let exec = gps_rpq::EvalHandle::naive(&g);
        let mut examples = ExampleSet::new();
        examples.add_negative(ids.n5);
        let coverage = NegativeCoverage::from_negatives(&g, [ids.n5], 3);
        // One pruning state synced to the coverage (cached path), one never
        // refreshed (direct path).
        let mut synced = PruningState::new(3);
        synced.refresh_with(&g, &examples, &coverage, &exec);
        let cold = PruningState::new(3);
        let from_cache = InformativePathsStrategy::default()
            .propose(&context(&g, &examples, &coverage, &synced))
            .unwrap();
        let direct = InformativePathsStrategy::default()
            .propose(&context(&g, &examples, &coverage, &cold))
            .unwrap();
        // The synced state prunes uninformative nodes the cold one keeps, but
        // the chosen top-scoring candidate must be the same node.
        assert_eq!(from_cache, direct);
    }

    #[test]
    fn random_strategy_is_reproducible_per_seed() {
        let (g, _) = figure1_graph();
        let examples = ExampleSet::new();
        let coverage = NegativeCoverage::new(3);
        let pruning = PruningState::new(3);
        let ctx = context(&g, &examples, &coverage, &pruning);
        let a: Vec<_> = {
            let mut s = RandomStrategy::seeded(42);
            (0..5).map(|_| s.propose(&ctx).unwrap()).collect()
        };
        let b: Vec<_> = {
            let mut s = RandomStrategy::seeded(42);
            (0..5).map(|_| s.propose(&ctx).unwrap()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn strategies_report_names() {
        assert_eq!(
            Strategy::<Graph>::name(&RandomStrategy::default()),
            "random"
        );
        assert_eq!(Strategy::<Graph>::name(&DegreeStrategy), "degree");
        assert_eq!(
            Strategy::<Graph>::name(&InformativePathsStrategy::default()),
            "informative-paths"
        );
    }

    #[test]
    fn exhausted_graph_proposes_nothing() {
        let (g, _) = figure1_graph();
        let mut examples = ExampleSet::new();
        for n in g.nodes() {
            examples.add_negative(n);
        }
        let coverage = NegativeCoverage::new(3);
        let pruning = PruningState::new(3);
        let ctx = context(&g, &examples, &coverage, &pruning);
        assert_eq!(RandomStrategy::default().propose(&ctx), None);
        assert_eq!(DegreeStrategy.propose(&ctx), None);
    }
}
