//! Candidate-path selection and prefix-tree validation (Figure 3(c)).
//!
//! When the user labels a node positive, GPS "builds all paths of the current
//! node that are not yet covered by negative examples and of length at most
//! the size of the last neighborhood", presents them as a prefix tree and
//! highlights the path it believes the user has in mind — preferring a path
//! whose length equals the last neighborhood radius, because the user zoomed
//! out exactly that far before answering.

use gps_graph::{GraphBackend, NodeId, PathEnumerator, PrefixTree, Word};
use gps_rpq::{EvalHandle, NegativeCoverage};

/// The prompt shown to the user for path validation: the candidate words (as
/// a prefix tree plus a flat list) and the system's suggested word.
#[derive(Debug, Clone)]
pub struct PathValidationPrompt {
    /// The node whose paths are being validated.
    pub node: NodeId,
    /// All candidate words (uncovered, length ≤ the neighborhood radius),
    /// sorted by length then lexicographically.
    pub candidates: Vec<Word>,
    /// The prefix tree over the candidate words, for display.
    pub tree: PrefixTree,
    /// The word the system suggests (highlighted in the UI).
    pub suggested: Word,
}

impl PathValidationPrompt {
    /// Returns `true` when `word` is one of the candidates.
    pub fn is_candidate(&self, word: &[gps_graph::LabelId]) -> bool {
        self.candidates.iter().any(|w| w == word)
    }
}

/// Builds the path-validation prompt for a positive `node`.
///
/// * `radius` — the radius of the last neighborhood the user saw; candidate
///   words are bounded by it and the suggestion prefers words of exactly that
///   length;
/// * `coverage` — the negative coverage; covered words are not candidates.
///
/// Returns `None` when the node has no uncovered word within the radius (the
/// node should not have been proposed in that case).
pub fn build_prompt<B: GraphBackend>(
    graph: &B,
    node: NodeId,
    radius: usize,
    coverage: &NegativeCoverage,
) -> Option<PathValidationPrompt> {
    build_prompt_with(graph, node, radius, coverage, None)
}

/// [`build_prompt`] reading the node's radius-bounded words from a shared
/// per-snapshot word cache instead of re-enumerating its paths per positive
/// label — the session hot-spot fix.
///
/// When `exec` is present and its snapshot matches `graph`, the candidate
/// words come from [`gps_rpq::EvalCache::bounded_words`] (computed once per
/// `(snapshot, radius)` and shared across every session on the engine);
/// otherwise the direct enumeration of [`build_prompt`] is used.  Both paths
/// produce byte-identical prompts.
pub fn build_prompt_with<B: GraphBackend>(
    graph: &B,
    node: NodeId,
    radius: usize,
    coverage: &NegativeCoverage,
    exec: Option<&EvalHandle>,
) -> Option<PathValidationPrompt> {
    let cached = exec
        .filter(|exec| exec.epoch() == graph.epoch())
        .map(|exec| exec.bounded_words(radius))
        .filter(|cached| cached.len() == graph.node_count());
    let mut candidates: Vec<Word> = match &cached {
        // The cached per-node sets are exactly
        // `PathEnumerator::new(radius).words_from(graph, node)` in the same
        // (lexicographic) order.
        Some(cached) => cached[node.index()]
            .iter()
            .filter(|w| !coverage.is_covered(w))
            .cloned()
            .collect(),
        None => PathEnumerator::new(radius)
            .words_from(graph, node)
            .into_iter()
            .filter(|w| !coverage.is_covered(w))
            .collect(),
    };
    if candidates.is_empty() {
        return None;
    }
    candidates.sort_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)));
    let suggested = suggest(&candidates, radius);
    let tree = PrefixTree::from_words(&candidates);
    Some(PathValidationPrompt {
        node,
        candidates,
        tree,
        suggested,
    })
}

/// The suggestion heuristic of the paper: prefer a candidate whose length
/// equals the neighborhood radius (the user zoomed out exactly that far);
/// fall back to the longest candidate, then to the first.
fn suggest(candidates: &[Word], radius: usize) -> Word {
    candidates
        .iter()
        .find(|w| w.len() == radius)
        .or_else(|| candidates.iter().max_by_key(|w| w.len()))
        .cloned()
        .unwrap_or_default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_datasets::figure1::figure1_graph;

    #[test]
    fn figure3c_prompt_for_n2() {
        let (g, ids) = figure1_graph();
        let coverage = NegativeCoverage::new(3);
        let prompt = build_prompt(&g, ids.n2, 3, &coverage).unwrap();
        assert_eq!(prompt.node, ids.n2);
        let bus = g.label_id("bus").unwrap();
        let tram = g.label_id("tram").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        let restaurant = g.label_id("restaurant").unwrap();
        // The paper highlights a length-3 path as the candidate of interest.
        assert_eq!(prompt.suggested.len(), 3);
        // bus·bus·cinema and bus·tram·cinema are both candidates.
        assert!(prompt.is_candidate(&[bus, bus, cinema]));
        assert!(prompt.is_candidate(&[bus, tram, cinema]));
        assert!(prompt.is_candidate(&[restaurant]));
        // The tree stores exactly the candidate words.
        assert_eq!(prompt.tree.word_count(), prompt.candidates.len());
        // Candidates are sorted by length.
        for window in prompt.candidates.windows(2) {
            assert!(window[0].len() <= window[1].len());
        }
    }

    #[test]
    fn covered_words_are_excluded() {
        let (g, ids) = figure1_graph();
        // Labeling N5 negative covers bus (N5 -bus-> ... no wait, N5 has
        // tram and restaurant); use N3 whose words are bus-prefixed.
        let coverage = NegativeCoverage::from_negatives(&g, [ids.n5], 3);
        let prompt = build_prompt(&g, ids.n2, 3, &coverage).unwrap();
        let restaurant = g.label_id("restaurant").unwrap();
        // N5's words include restaurant, so N2's bare `restaurant` word is
        // covered and excluded.
        assert!(!prompt.is_candidate(&[restaurant]));
        let bus = g.label_id("bus").unwrap();
        let tram = g.label_id("tram").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        assert!(prompt.is_candidate(&[bus, tram, cinema]));
    }

    #[test]
    fn radius_bounds_candidate_length() {
        let (g, ids) = figure1_graph();
        let coverage = NegativeCoverage::new(3);
        let prompt = build_prompt(&g, ids.n2, 2, &coverage).unwrap();
        assert!(prompt.candidates.iter().all(|w| w.len() <= 2));
        // With radius 2 there is no length-2 cinema word from N2, so the
        // suggestion is a length-2 transport word.
        assert_eq!(prompt.suggested.len(), 2);
    }

    #[test]
    fn node_without_uncovered_words_has_no_prompt() {
        let (g, ids) = figure1_graph();
        let coverage = NegativeCoverage::new(3);
        assert!(build_prompt(&g, ids.c1, 3, &coverage).is_none());
        // Cover all of N6's words: cinema and bus, bus·tram, bus·restaurant…
        let coverage2 = NegativeCoverage::from_negatives(&g, [ids.n4, ids.n5], 3);
        // N6's words: cinema (covered by N4), bus (covered via N4's bus),
        // bus·tram (N4: bus·tram? N4 -bus-> N5 -tram-> N3 = bus·tram yes),
        // bus·restaurant (N4 -bus-> N5 -restaurant-> R2 yes)… so everything
        // within radius 2 is covered.
        assert!(build_prompt(&g, ids.n6, 2, &coverage2).is_none());
    }

    #[test]
    fn cached_prompt_is_byte_identical_to_direct_enumeration() {
        let (g, ids) = figure1_graph();
        let exec = gps_rpq::EvalHandle::naive(&g);
        for negatives in [vec![], vec![ids.n5], vec![ids.n4, ids.n5]] {
            let coverage = NegativeCoverage::from_negatives(&g, negatives.clone(), 3);
            for node in g.nodes() {
                for radius in 1..=4usize {
                    let direct = build_prompt(&g, node, radius, &coverage);
                    let cached = build_prompt_with(&g, node, radius, &coverage, Some(&exec));
                    match (direct, cached) {
                        (None, None) => {}
                        (Some(d), Some(c)) => {
                            assert_eq!(d.candidates, c.candidates, "{node} r{radius}");
                            assert_eq!(d.suggested, c.suggested, "{node} r{radius}");
                            assert_eq!(
                                d.tree.word_count(),
                                c.tree.word_count(),
                                "{node} r{radius}"
                            );
                        }
                        (d, c) => panic!("{node} r{radius}: {d:?} vs {c:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn mismatched_snapshot_falls_back_to_enumeration() {
        let (g, ids) = figure1_graph();
        // A handle over a *different* (smaller) graph must not be trusted.
        let mut other = gps_graph::Graph::new();
        let a = other.add_node("A");
        let b = other.add_node("B");
        other.add_edge_by_name(a, "x", b);
        let foreign = gps_rpq::EvalHandle::naive(&other);
        let coverage = NegativeCoverage::new(3);
        let direct = build_prompt(&g, ids.n2, 3, &coverage).unwrap();
        let fallback = build_prompt_with(&g, ids.n2, 3, &coverage, Some(&foreign)).unwrap();
        assert_eq!(direct.candidates, fallback.candidates);
        assert_eq!(direct.suggested, fallback.suggested);
    }

    #[test]
    fn suggestion_falls_back_to_longest() {
        let (g, ids) = figure1_graph();
        let coverage = NegativeCoverage::new(3);
        // Radius 5 but N6's longest uncovered word is shorter than 5.
        let prompt = build_prompt(&g, ids.n6, 5, &coverage).unwrap();
        let max_len = prompt.candidates.iter().map(|w| w.len()).max().unwrap();
        assert!(prompt.suggested.len() <= 5);
        assert_eq!(prompt.suggested.len(), max_len.min(5));
    }
}
