//! # gps-interactive — the interactive path-query specification protocol
//!
//! This crate implements the core of GPS (Figure 2 of the paper): the loop
//! that repeatedly proposes an informative node to the user, shows her its
//! neighborhood (zooming out on demand), records her positive/negative label,
//! optionally lets her validate the witness path in a prefix tree, propagates
//! the label, prunes nodes that became uninformative, and re-learns a
//! candidate query until a halt condition is met.
//!
//! Every piece is generic over [`gps_graph::GraphBackend`] (defaulting to
//! the mutable [`gps_graph::Graph`]), so whole sessions — strategies, users,
//! zooming, pruning and validation included — run unchanged on the immutable
//! [`gps_graph::CsrGraph`] snapshot.
//!
//! * [`strategy`] — node-proposal strategies `Υ` (random, degree-based, and
//!   the informative-paths strategy of the paper);
//! * [`pruning`] — the uninformative-node pruning state;
//! * [`propagation`] — label propagation after each interaction;
//! * [`zoom`] — neighborhood zooming (Figure 3(a)/(b));
//! * [`validation`] — candidate-path selection and prefix-tree validation
//!   (Figure 3(c));
//! * [`user`] — the [`user::User`] trait and the simulated oracle user driven
//!   by a hidden goal query;
//! * [`halt`] — halt conditions;
//! * [`session`] — the session loop tying everything together;
//! * [`stats`] — per-session statistics (number of interactions, zooms,
//!   pruned nodes, …) used by the experiments.
//!
//! ## Example
//!
//! ```
//! use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
//! use gps_interactive::session::{Session, SessionConfig};
//! use gps_interactive::strategy::InformativePathsStrategy;
//! use gps_interactive::user::SimulatedUser;
//! use gps_rpq::PathQuery;
//!
//! let (graph, _) = figure1_graph();
//! let goal = PathQuery::parse(MOTIVATING_QUERY, graph.labels()).unwrap();
//! let mut user = SimulatedUser::new(goal.clone(), &graph);
//! let mut session = Session::new(&graph, SessionConfig::default());
//! let outcome = session.run(&mut InformativePathsStrategy::default(), &mut user);
//! let learned = outcome.learned.expect("a query is learned");
//! // The learned query agrees with the goal on the whole graph.
//! assert_eq!(learned.answer.nodes(), goal.evaluate(&graph).nodes());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod halt;
pub mod metrics;
pub mod propagation;
pub mod pruning;
pub mod session;
pub mod stats;
pub mod strategy;
pub mod user;
pub mod validation;
pub mod zoom;

pub use halt::HaltReason;
pub use metrics::{PruningMetrics, SessionMetrics};
pub use session::{Session, SessionConfig, SessionOutcome};
pub use stats::SessionStats;
pub use strategy::{DegreeStrategy, InformativePathsStrategy, RandomStrategy, Strategy};
pub use user::{SimulatedUser, User, UserResponse};
