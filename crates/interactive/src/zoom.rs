//! Neighborhood zooming (Figure 3(a) → 3(b)).
//!
//! Before labeling, the user sees the neighborhood of the proposed node at
//! distance 2; she may repeatedly ask to zoom out, each time revealing the
//! next ring of nodes and edges.  [`ZoomState`] tracks the current fragment
//! and the deltas, and refuses to zoom past the point where nothing new can
//! be revealed (or past a configurable cap).

use gps_graph::{GraphBackend, Neighborhood, NeighborhoodDelta, NodeId};

/// The zooming state for one proposed node.
#[derive(Debug, Clone)]
pub struct ZoomState {
    node: NodeId,
    current: Neighborhood,
    deltas: Vec<NeighborhoodDelta>,
    max_radius: u32,
}

impl ZoomState {
    /// Starts zooming on `node` with the given initial radius (the paper uses
    /// 2) and a maximum radius cap.
    pub fn new<B: GraphBackend>(
        graph: &B,
        node: NodeId,
        initial_radius: u32,
        max_radius: u32,
    ) -> Self {
        let current = Neighborhood::extract(graph, node, initial_radius);
        Self {
            node,
            current,
            deltas: Vec::new(),
            max_radius: max_radius.max(initial_radius),
        }
    }

    /// The node being inspected.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The currently visible fragment.
    pub fn neighborhood(&self) -> &Neighborhood {
        &self.current
    }

    /// The current radius.
    pub fn radius(&self) -> u32 {
        self.current.radius()
    }

    /// Number of zoom-out steps performed so far.
    pub fn zoom_count(&self) -> usize {
        self.deltas.len()
    }

    /// The deltas revealed by each zoom step, oldest first.
    pub fn deltas(&self) -> &[NeighborhoodDelta] {
        &self.deltas
    }

    /// Returns `true` when another zoom step can still reveal something (the
    /// radius cap has not been hit and the last zoom was not empty).
    pub fn can_zoom(&self) -> bool {
        self.radius() < self.max_radius
            && !matches!(self.deltas.last(), Some(delta) if delta.is_empty())
    }

    /// Zooms out by one ring.  Returns the delta, or `None` when zooming is
    /// no longer possible.
    pub fn zoom_out<B: GraphBackend>(&mut self, graph: &B) -> Option<&NeighborhoodDelta> {
        if !self.can_zoom() {
            return None;
        }
        let (larger, delta) = self.current.zoom_out(graph);
        self.current = larger;
        self.deltas.push(delta);
        self.deltas.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_datasets::figure1::figure1_graph;

    #[test]
    fn initial_state_matches_the_paper_default() {
        let (g, ids) = figure1_graph();
        let zoom = ZoomState::new(&g, ids.n2, 2, 5);
        assert_eq!(zoom.node(), ids.n2);
        assert_eq!(zoom.radius(), 2);
        assert_eq!(zoom.zoom_count(), 0);
        assert!(zoom.can_zoom());
        assert!(!zoom.neighborhood().contains(ids.c1));
    }

    #[test]
    fn zooming_reveals_the_cinema_as_in_figure3() {
        let (g, ids) = figure1_graph();
        let mut zoom = ZoomState::new(&g, ids.n2, 2, 5);
        let delta = zoom.zoom_out(&g).expect("zoom succeeds").clone();
        assert_eq!(zoom.radius(), 3);
        assert!(zoom.neighborhood().contains(ids.c1));
        assert!(delta.added_nodes.contains(&ids.c1));
        assert_eq!(zoom.zoom_count(), 1);
        assert_eq!(zoom.deltas().len(), 1);
    }

    #[test]
    fn zooming_stops_at_the_cap() {
        let (g, ids) = figure1_graph();
        let mut zoom = ZoomState::new(&g, ids.n2, 2, 3);
        assert!(zoom.zoom_out(&g).is_some());
        assert!(!zoom.can_zoom());
        assert!(zoom.zoom_out(&g).is_none());
        assert_eq!(zoom.radius(), 3);
    }

    #[test]
    fn zooming_stops_when_nothing_new_appears() {
        let (g, ids) = figure1_graph();
        let mut zoom = ZoomState::new(&g, ids.n6, 2, 20);
        // From N6 everything reachable is within a few hops; keep zooming
        // until the state refuses.
        let mut steps = 0;
        while zoom.zoom_out(&g).is_some() {
            steps += 1;
            assert!(steps < 20, "zooming must terminate");
        }
        assert!(!zoom.can_zoom());
        // The last recorded delta is empty (that is what stopped us) or the
        // cap was hit; here the saturation happens first.
        assert!(zoom.deltas().last().unwrap().is_empty());
    }

    #[test]
    fn cap_below_initial_radius_is_clamped() {
        let (g, ids) = figure1_graph();
        let zoom = ZoomState::new(&g, ids.n2, 2, 1);
        assert_eq!(zoom.radius(), 2);
        assert!(!zoom.can_zoom());
    }
}
