//! Integration tests driving sessions with scripted (non-oracle) users and
//! unusual configurations: exhausted budgets, users that always zoom, users
//! that answer inconsistently with any goal, and the paper's S2
//! counterexample where the learner without path validation settles on `bus`.

use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
use gps_interactive::halt::{HaltConfig, HaltReason};
use gps_interactive::pruning::PruningState;
use gps_interactive::session::{Session, SessionConfig};
use gps_interactive::strategy::{InformativePathsStrategy, Strategy, StrategyContext};
use gps_interactive::user::{ScriptedUser, SimulatedUser, User, UserResponse};
use gps_learner::{consistency, ExampleSet, Learner};
use gps_rpq::{NegativeCoverage, PathQuery};

#[test]
fn scripted_all_negative_user_exhausts_the_graph() {
    let (graph, _) = figure1_graph();
    // A user who answers "No" to everything: the session ends when every node
    // is labeled or pruned, and no query can be learned.
    let mut user = ScriptedUser::new(vec![UserResponse::Negative; 20], vec![]);
    let mut strategy = InformativePathsStrategy::default();
    let mut session = Session::new(&graph, SessionConfig::default());
    let outcome = session.run(&mut strategy, &mut user);
    assert_eq!(outcome.halt_reason, HaltReason::AllNodesResolved);
    assert!(outcome.learned.is_none());
    assert_eq!(outcome.stats.positive_labels, 0);
    assert!(outcome.stats.negative_labels >= 1);
    assert!(outcome.examples.positives().is_empty());
}

#[test]
fn user_that_always_zooms_is_forced_to_decide() {
    let (graph, _) = figure1_graph();
    // Zoom forever: the zoom cap converts the non-answer into a conservative
    // negative, so the session still terminates.
    let mut user = ScriptedUser::new(vec![UserResponse::ZoomOut; 100], vec![]);
    let mut strategy = InformativePathsStrategy::default();
    let mut session = Session::new(&graph, SessionConfig::default());
    let outcome = session.run(&mut strategy, &mut user);
    assert!(outcome.halt_reason.is_convergence() || outcome.stats.interactions > 0);
    assert_eq!(outcome.stats.positive_labels, 0);
    assert!(outcome.stats.zooms > 0);
}

#[test]
fn budget_of_zero_interactions_halts_immediately() {
    let (graph, _) = figure1_graph();
    let goal = PathQuery::parse(MOTIVATING_QUERY, graph.labels()).unwrap();
    let mut user = SimulatedUser::new(goal, &graph);
    let config = SessionConfig {
        halt: HaltConfig {
            max_interactions: 0,
            stop_on_goal: true,
        },
        ..SessionConfig::default()
    };
    let mut session = Session::new(&graph, config);
    let outcome = session.run(&mut InformativePathsStrategy::default(), &mut user);
    assert_eq!(outcome.halt_reason, HaltReason::InteractionBudgetExhausted);
    assert_eq!(outcome.stats.interactions, 0);
    assert!(outcome.learned.is_none());
}

#[test]
fn paper_counterexample_without_validation_learns_bus_like_query() {
    // Reproduce the paper's S2 narrative directly on the learner: with
    // examples +N2 +N6 −N5 and the learner choosing its own (smallest
    // uncovered) witness words, the learned query behaves like `bus` — it is
    // consistent with the examples but not the goal query.
    let (graph, ids) = figure1_graph();
    let mut examples = ExampleSet::new();
    examples.add_positive(ids.n2);
    examples.add_positive(ids.n6);
    examples.add_negative(ids.n5);
    let learned = Learner::default().learn(&graph, &examples).unwrap();
    // Consistent with the labels...
    assert!(consistency::check_answer(&learned.answer, &examples).is_consistent());
    // ...but NOT language-equivalent to the goal query.
    let goal = PathQuery::parse(MOTIVATING_QUERY, graph.labels()).unwrap();
    let alphabet = gps_automata::Alphabet::from_interner(graph.labels());
    assert!(!gps_automata::decide::equivalent(
        &learned.dfa,
        goal.dfa(),
        &alphabet
    ));
    // The smallest uncovered word selected for N2 is the single label `bus`,
    // exactly the paper's example of an unintended generalization seed.
    let bus = graph.label_id("bus").unwrap();
    assert_eq!(learned.selected_paths[&ids.n2], vec![bus]);
}

#[test]
fn with_validation_the_same_examples_seed_the_goal_paths() {
    let (graph, ids) = figure1_graph();
    let goal = PathQuery::parse(MOTIVATING_QUERY, graph.labels()).unwrap();
    let mut user = SimulatedUser::new(goal.clone(), &graph);
    // Build the validation prompt N2 would get at radius 3 and check the
    // simulated user corrects the suggestion to a goal-accepted word.
    let coverage = NegativeCoverage::from_negatives(&graph, [ids.n5], 4);
    let prompt = gps_interactive::validation::build_prompt(&graph, ids.n2, 3, &coverage).unwrap();
    let chosen = user.validate_path(&graph, ids.n2, &prompt.candidates, &prompt.suggested);
    assert!(goal.dfa().accepts(&chosen));
}

#[test]
fn strategy_context_is_reusable_across_strategies() {
    // The same context can be consulted by several strategies in one step
    // (the benchmark harness does this); verify borrows compose.
    let (graph, _) = figure1_graph();
    let examples = ExampleSet::new();
    let coverage = NegativeCoverage::new(3);
    let mut pruning = PruningState::new(3);
    pruning.refresh(&graph, &examples, &coverage);
    let ctx = StrategyContext {
        graph: &graph,
        examples: &examples,
        coverage: &coverage,
        pruning: &pruning,
    };
    let mut informative = InformativePathsStrategy::default();
    let first = informative.propose(&ctx);
    let second = informative.propose(&ctx);
    assert_eq!(first, second, "stateless strategy is deterministic");
}

#[test]
fn scripted_positive_then_negative_is_recorded_in_order() {
    let (graph, _) = figure1_graph();
    let mut user = ScriptedUser::new(vec![UserResponse::Positive, UserResponse::Negative], vec![]);
    let mut strategy = InformativePathsStrategy::default();
    let config = SessionConfig {
        halt: HaltConfig {
            max_interactions: 2,
            stop_on_goal: false,
        },
        with_path_validation: false,
        ..SessionConfig::default()
    };
    let mut session = Session::new(&graph, config);
    let outcome = session.run(&mut strategy, &mut user);
    assert_eq!(outcome.stats.interactions, 2);
    assert_eq!(outcome.stats.positive_labels, 1);
    assert_eq!(outcome.stats.negative_labels, 1);
    assert_eq!(outcome.transcript.len(), 2);
    assert_eq!(outcome.transcript[0].label, gps_learner::Label::Positive);
    assert_eq!(outcome.transcript[1].label, gps_learner::Label::Negative);
}
