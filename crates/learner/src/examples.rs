//! Labeled example sets.
//!
//! During a GPS session the user labels nodes as *positive* (should be in the
//! query answer) or *negative* (should not).  Optionally a positive node
//! carries a *validated path* — the word the user confirmed in the prefix
//! tree (Figure 3(c)), which the learner must then use verbatim instead of
//! choosing its own witness.

use gps_graph::{NodeId, Word};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The polarity of an example.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Label {
    /// The node must be selected by the goal query.
    Positive,
    /// The node must not be selected by the goal query.
    Negative,
}

impl Label {
    /// Returns the opposite label.
    pub fn negate(self) -> Label {
        match self {
            Label::Positive => Label::Negative,
            Label::Negative => Label::Positive,
        }
    }
}

/// A set of labeled nodes, with optional validated paths for positives.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExampleSet {
    labels: BTreeMap<NodeId, Label>,
    validated_paths: BTreeMap<NodeId, Word>,
}

impl ExampleSet {
    /// Creates an empty example set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Labels `node` as positive.  Returns the previous label, if any.
    pub fn add_positive(&mut self, node: NodeId) -> Option<Label> {
        self.labels.insert(node, Label::Positive)
    }

    /// Labels `node` as negative.  Returns the previous label, if any.  A
    /// previously validated path for the node is removed.
    pub fn add_negative(&mut self, node: NodeId) -> Option<Label> {
        self.validated_paths.remove(&node);
        self.labels.insert(node, Label::Negative)
    }

    /// Labels `node` with `label`.
    pub fn add(&mut self, node: NodeId, label: Label) -> Option<Label> {
        match label {
            Label::Positive => self.add_positive(node),
            Label::Negative => self.add_negative(node),
        }
    }

    /// Records the path the user validated for a positive node.  The node is
    /// labeled positive if it was not already.
    pub fn set_validated_path(&mut self, node: NodeId, word: Word) {
        self.labels.insert(node, Label::Positive);
        self.validated_paths.insert(node, word);
    }

    /// The validated path of `node`, if the user provided one.
    pub fn validated_path(&self, node: NodeId) -> Option<&Word> {
        self.validated_paths.get(&node)
    }

    /// Removes the label (and validated path) of `node`.
    pub fn remove(&mut self, node: NodeId) -> Option<Label> {
        self.validated_paths.remove(&node);
        self.labels.remove(&node)
    }

    /// The label of `node`, if any.
    pub fn label(&self, node: NodeId) -> Option<Label> {
        self.labels.get(&node).copied()
    }

    /// Returns `true` if `node` has been labeled (either way).
    pub fn is_labeled(&self, node: NodeId) -> bool {
        self.labels.contains_key(&node)
    }

    /// Positive nodes in id order.
    pub fn positives(&self) -> Vec<NodeId> {
        self.labels
            .iter()
            .filter_map(|(&n, &l)| (l == Label::Positive).then_some(n))
            .collect()
    }

    /// Negative nodes in id order.
    pub fn negatives(&self) -> Vec<NodeId> {
        self.labels
            .iter()
            .filter_map(|(&n, &l)| (l == Label::Negative).then_some(n))
            .collect()
    }

    /// All `(node, label)` pairs in node-id order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Label)> + '_ {
        self.labels.iter().map(|(&n, &l)| (n, l))
    }

    /// Total number of labeled nodes.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Returns `true` when no node has been labeled.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Number of positive examples.
    pub fn positive_count(&self) -> usize {
        self.positives().len()
    }

    /// Number of negative examples.
    pub fn negative_count(&self) -> usize {
        self.negatives().len()
    }
}

impl FromIterator<(NodeId, Label)> for ExampleSet {
    fn from_iter<T: IntoIterator<Item = (NodeId, Label)>>(iter: T) -> Self {
        let mut set = ExampleSet::new();
        for (node, label) in iter {
            set.add(node, label);
        }
        set
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::LabelId;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn labels_are_recorded_and_replaced() {
        let mut set = ExampleSet::new();
        assert!(set.is_empty());
        assert_eq!(set.add_positive(n(1)), None);
        assert_eq!(set.label(n(1)), Some(Label::Positive));
        assert_eq!(set.add_negative(n(1)), Some(Label::Positive));
        assert_eq!(set.label(n(1)), Some(Label::Negative));
        assert_eq!(set.len(), 1);
        assert!(set.is_labeled(n(1)));
        assert!(!set.is_labeled(n(2)));
    }

    #[test]
    fn positives_and_negatives_are_partitioned() {
        let mut set = ExampleSet::new();
        set.add_positive(n(2));
        set.add_positive(n(5));
        set.add_negative(n(3));
        assert_eq!(set.positives(), vec![n(2), n(5)]);
        assert_eq!(set.negatives(), vec![n(3)]);
        assert_eq!(set.positive_count(), 2);
        assert_eq!(set.negative_count(), 1);
        let all: Vec<_> = set.iter().collect();
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn validated_paths_follow_the_label() {
        let mut set = ExampleSet::new();
        let word = vec![LabelId::new(0), LabelId::new(2)];
        set.set_validated_path(n(4), word.clone());
        assert_eq!(set.label(n(4)), Some(Label::Positive));
        assert_eq!(set.validated_path(n(4)), Some(&word));
        // Relabeling negative drops the path.
        set.add_negative(n(4));
        assert_eq!(set.validated_path(n(4)), None);
    }

    #[test]
    fn removal_clears_everything() {
        let mut set = ExampleSet::new();
        set.set_validated_path(n(1), vec![LabelId::new(0)]);
        assert_eq!(set.remove(n(1)), Some(Label::Positive));
        assert!(set.is_empty());
        assert_eq!(set.validated_path(n(1)), None);
        assert_eq!(set.remove(n(1)), None);
    }

    #[test]
    fn label_negation() {
        assert_eq!(Label::Positive.negate(), Label::Negative);
        assert_eq!(Label::Negative.negate(), Label::Positive);
    }

    #[test]
    fn from_iterator_collects_labels() {
        let set: ExampleSet = vec![(n(1), Label::Positive), (n(2), Label::Negative)]
            .into_iter()
            .collect();
        assert_eq!(set.positives(), vec![n(1)]);
        assert_eq!(set.negatives(), vec![n(2)]);
    }

    #[test]
    fn generic_add_dispatches_on_label() {
        let mut set = ExampleSet::new();
        set.add(n(1), Label::Positive);
        set.add(n(2), Label::Negative);
        assert_eq!(set.label(n(1)), Some(Label::Positive));
        assert_eq!(set.label(n(2)), Some(Label::Negative));
    }

    #[test]
    fn serde_round_trip() {
        let mut set = ExampleSet::new();
        set.add_positive(n(1));
        set.set_validated_path(n(1), vec![LabelId::new(3)]);
        set.add_negative(n(9));
        let json = serde_json::to_string(&set).unwrap();
        let back: ExampleSet = serde_json::from_str(&json).unwrap();
        assert_eq!(back, set);
    }
}
