//! Quality metrics for learned queries.
//!
//! The companion research paper evaluates learned queries by comparing their
//! answer against the goal query's answer on the instance (precision, recall,
//! F-measure) in addition to counting interactions.  These metrics are used
//! by the experiment harness (`repro --experiment a1`) and are handy for
//! downstream users who want to monitor convergence of partial hypotheses.

use gps_rpq::QueryAnswer;

/// Precision / recall / F1 of a hypothesis answer with respect to a goal
/// answer over the same graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnswerMetrics {
    /// |hypothesis ∩ goal| / |hypothesis| (1.0 when the hypothesis is empty).
    pub precision: f64,
    /// |hypothesis ∩ goal| / |goal| (1.0 when the goal is empty).
    pub recall: f64,
    /// Harmonic mean of precision and recall (0.0 when both are 0).
    pub f1: f64,
    /// Number of nodes selected by both.
    pub true_positives: usize,
    /// Number of nodes selected by the hypothesis but not the goal.
    pub false_positives: usize,
    /// Number of nodes selected by the goal but not the hypothesis.
    pub false_negatives: usize,
}

impl AnswerMetrics {
    /// Compares `hypothesis` against `goal`.
    pub fn compare(hypothesis: &QueryAnswer, goal: &QueryAnswer) -> Self {
        let hypothesis_nodes = hypothesis.nodes();
        let goal_nodes = goal.nodes();
        let true_positives = hypothesis_nodes
            .iter()
            .filter(|n| goal.contains(**n))
            .count();
        let false_positives = hypothesis_nodes.len() - true_positives;
        let false_negatives = goal_nodes.len() - true_positives;
        let precision = if hypothesis_nodes.is_empty() {
            1.0
        } else {
            true_positives as f64 / hypothesis_nodes.len() as f64
        };
        let recall = if goal_nodes.is_empty() {
            1.0
        } else {
            true_positives as f64 / goal_nodes.len() as f64
        };
        let f1 = if precision + recall == 0.0 {
            0.0
        } else {
            2.0 * precision * recall / (precision + recall)
        };
        Self {
            precision,
            recall,
            f1,
            true_positives,
            false_positives,
            false_negatives,
        }
    }

    /// Returns `true` when the hypothesis answer equals the goal answer.
    pub fn is_exact(&self) -> bool {
        self.false_positives == 0 && self.false_negatives == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn answer(flags: &[bool]) -> QueryAnswer {
        QueryAnswer::from_flags(flags.to_vec())
    }

    #[test]
    fn exact_match_scores_one() {
        let goal = answer(&[true, false, true, false]);
        let metrics = AnswerMetrics::compare(&goal, &goal);
        assert_eq!(metrics.precision, 1.0);
        assert_eq!(metrics.recall, 1.0);
        assert_eq!(metrics.f1, 1.0);
        assert!(metrics.is_exact());
        assert_eq!(metrics.true_positives, 2);
    }

    #[test]
    fn overgeneralization_hurts_precision_only() {
        let goal = answer(&[true, false, false, false]);
        let hypothesis = answer(&[true, true, true, false]);
        let metrics = AnswerMetrics::compare(&hypothesis, &goal);
        assert!((metrics.precision - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(metrics.recall, 1.0);
        assert_eq!(metrics.false_positives, 2);
        assert_eq!(metrics.false_negatives, 0);
        assert!(!metrics.is_exact());
    }

    #[test]
    fn undergeneralization_hurts_recall_only() {
        let goal = answer(&[true, true, true, false]);
        let hypothesis = answer(&[true, false, false, false]);
        let metrics = AnswerMetrics::compare(&hypothesis, &goal);
        assert_eq!(metrics.precision, 1.0);
        assert!((metrics.recall - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(metrics.false_negatives, 2);
    }

    #[test]
    fn empty_answers_edge_cases() {
        let empty = answer(&[false, false]);
        let goal = answer(&[true, false]);
        let m1 = AnswerMetrics::compare(&empty, &goal);
        assert_eq!(m1.precision, 1.0, "empty hypothesis makes no false claim");
        assert_eq!(m1.recall, 0.0);
        assert_eq!(m1.f1, 0.0);
        let m2 = AnswerMetrics::compare(&goal, &empty);
        assert_eq!(m2.recall, 1.0, "empty goal is trivially covered");
        assert_eq!(m2.precision, 0.0);
        let m3 = AnswerMetrics::compare(&empty, &empty);
        assert!(m3.is_exact());
        assert_eq!(m3.f1, 1.0);
    }

    #[test]
    fn disjoint_answers_score_zero_f1() {
        let goal = answer(&[true, false]);
        let hypothesis = answer(&[false, true]);
        let metrics = AnswerMetrics::compare(&hypothesis, &goal);
        assert_eq!(metrics.f1, 0.0);
        assert_eq!(metrics.true_positives, 0);
    }
}
