//! The end-to-end learner.
//!
//! [`Learner::learn`] implements the two-step algorithm of the paper:
//! select an uncovered path per positive example (respecting user-validated
//! paths), build the prefix-tree acceptor of the selected paths, generalize
//! it by state merging while no negative node's word is accepted, and return
//! the result as both a DFA and a regular expression, together with its
//! answer on the graph.

use crate::error::LearnError;
use crate::examples::ExampleSet;
use crate::merge::generalize;
use crate::path_selection::{select_paths_with, SelectedPaths};
use gps_automata::state_elim::dfa_to_regex;
use gps_automata::{Dfa, Regex};
use gps_graph::{GraphBackend, NodeId, PathEnumerator, Word};
use gps_rpq::{eval, EvalHandle, NegativeCoverage, QueryAnswer};

/// Tunable parameters of the learner.
#[derive(Debug, Clone)]
pub struct Learner {
    /// Maximum length of paths considered when selecting positive witness
    /// words and when collecting the words of negative nodes.
    pub path_bound: usize,
    /// Safety cap on the number of paths enumerated per node.
    pub max_paths_per_node: usize,
}

impl Default for Learner {
    fn default() -> Self {
        Self {
            path_bound: 4,
            max_paths_per_node: 10_000,
        }
    }
}

/// The outcome of a successful learning step.
#[derive(Debug, Clone)]
pub struct LearnedQuery {
    /// The learned query as a regular expression (for display).
    pub regex: Regex,
    /// The learned query as a minimal DFA (for evaluation).
    pub dfa: Dfa,
    /// The words selected for the positive examples (step (i)).
    pub selected_paths: SelectedPaths,
    /// The answer of the learned query on the graph it was learned from.
    pub answer: QueryAnswer,
}

impl LearnedQuery {
    /// Returns `true` when the learned query selects `node`.
    pub fn selects(&self, node: NodeId) -> bool {
        self.answer.contains(node)
    }
}

impl Learner {
    /// Creates a learner with the given path-length bound.
    pub fn with_bound(path_bound: usize) -> Self {
        Self {
            path_bound,
            ..Self::default()
        }
    }

    /// Learns a query consistent with `examples` on `graph`.
    ///
    /// # Errors
    /// * [`LearnError::NoPositiveExamples`] — nothing to generalize from;
    /// * [`LearnError::PositiveFullyCovered`] / [`LearnError::ValidatedPathCovered`]
    ///   — the labeling is inconsistent within the length bound;
    /// * [`LearnError::InconsistentResult`] — the generalized query still
    ///   selects a negative node (the bound was too small to separate them).
    pub fn learn<B: GraphBackend>(
        &self,
        graph: &B,
        examples: &ExampleSet,
    ) -> Result<LearnedQuery, LearnError> {
        let coverage =
            NegativeCoverage::from_negatives(graph, examples.negatives(), self.path_bound);
        self.learn_core(graph, examples, &coverage, None)
    }

    /// Like [`learn`](Self::learn), but threaded through a shared evaluation
    /// stack: the final consistency evaluation goes through the handle's
    /// cache/evaluator (a stable hypothesis across interactions is a cache
    /// hit), and the caller's `coverage` — which a session maintains
    /// incrementally anyway — replaces the per-call coverage rebuild, with
    /// the negative constraint words read off its prefix tree instead of
    /// re-enumerating every negative node's paths.
    ///
    /// `coverage` must reflect exactly the negatives of `examples`; when its
    /// bound differs from the learner's it is rebuilt at the learner's bound.
    pub fn learn_with<B: GraphBackend>(
        &self,
        graph: &B,
        examples: &ExampleSet,
        coverage: &NegativeCoverage,
        exec: &EvalHandle,
    ) -> Result<LearnedQuery, LearnError> {
        if coverage.bound() != self.path_bound {
            let rebuilt =
                NegativeCoverage::from_negatives(graph, examples.negatives(), self.path_bound);
            return self.learn_core(graph, examples, &rebuilt, Some(exec));
        }
        self.learn_core(graph, examples, coverage, Some(exec))
    }

    fn learn_core<B: GraphBackend>(
        &self,
        graph: &B,
        examples: &ExampleSet,
        coverage: &NegativeCoverage,
        exec: Option<&EvalHandle>,
    ) -> Result<LearnedQuery, LearnError> {
        if examples.positive_count() == 0 {
            return Err(LearnError::NoPositiveExamples);
        }
        // Step (i): one uncovered word per positive example.  With a shared
        // stack the positive nodes' bounded words are read from the
        // per-snapshot cache instead of being re-enumerated per learn call.
        let selected = select_paths_with(graph, examples, coverage, self.path_bound, exec)?;
        let positive_words: Vec<Word> = selected.values().cloned().collect();

        // Negative constraint: every bounded word of every negative node,
        // plus the empty word (a nullable query degenerately selects *every*
        // node of every graph, so it can never be the intended path query).
        // With a shared stack the words come straight off the coverage's
        // prefix tree (same sorted order; ε sorts before every other word) —
        // unless the uncapped trie outgrew the learner's `max_paths_per_node`
        // safety valve, in which case the capped per-node enumeration of
        // [`learn`](Self::learn) is restored so the PTA stays bounded.
        let negative_words = match exec {
            Some(_) => {
                let covered = coverage.covered_words();
                if covered.len() > self.max_paths_per_node {
                    self.negative_words(graph, examples)
                } else {
                    let mut words: Vec<Word> = vec![Vec::new()];
                    words.extend(covered);
                    words
                }
            }
            None => self.negative_words(graph, examples),
        };

        // Step (ii): PTA + state merging.
        let dfa = generalize(&positive_words, &negative_words);
        let regex = dfa_to_regex(&dfa);

        // Final consistency check against the actual graph semantics.
        let answer = match exec {
            Some(exec) => (*exec.evaluate_compiled(&regex, &dfa)).clone(),
            None => eval::evaluate(graph, &dfa),
        };
        for negative in examples.negatives() {
            if answer.contains(negative) {
                return Err(LearnError::InconsistentResult { node: negative });
            }
        }
        Ok(LearnedQuery {
            regex,
            dfa,
            selected_paths: selected,
            answer,
        })
    }

    /// The words (up to the bound) of every negative node, plus ε (a nullable
    /// hypothesis would select every node and is never a meaningful path
    /// query).
    fn negative_words<B: GraphBackend>(&self, graph: &B, examples: &ExampleSet) -> Vec<Word> {
        let negatives = examples.negatives();
        let mut words: Vec<Word> = vec![Vec::new()];
        let enumerator =
            PathEnumerator::new(self.path_bound).with_max_paths(self.max_paths_per_node);
        for node in negatives {
            words.extend(enumerator.words_from(graph, node));
        }
        words.sort();
        words.dedup();
        words
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_automata::printer;
    use gps_graph::Graph;
    use gps_rpq::PathQuery;

    /// The full Figure 1 graph of the paper.
    fn figure1() -> Graph {
        let mut g = Graph::new();
        for name in ["N1", "N2", "N3", "N4", "N5", "N6", "C1", "C2", "R1", "R2"] {
            g.add_node(name);
        }
        let n = |g: &Graph, name: &str| g.node_by_name(name).unwrap();
        let edges = [
            ("N1", "tram", "N4"),
            ("N2", "bus", "N1"),
            ("N2", "bus", "N3"),
            ("N3", "bus", "N2"),
            ("N2", "restaurant", "R1"),
            ("N4", "cinema", "C1"),
            ("N4", "bus", "N5"),
            ("N5", "tram", "N2"),
            ("N5", "restaurant", "R2"),
            ("N6", "tram", "N5"),
            ("N6", "cinema", "C2"),
            ("N3", "tram", "N6"),
        ];
        for (s, l, t) in edges {
            let s = n(&g, s);
            let t = n(&g, t);
            g.add_edge_by_name(s, l, t);
        }
        g
    }

    #[test]
    fn learns_a_query_consistent_with_paper_examples() {
        let g = figure1();
        let mut ex = ExampleSet::new();
        ex.add_positive(g.node_by_name("N2").unwrap());
        ex.add_positive(g.node_by_name("N6").unwrap());
        ex.add_negative(g.node_by_name("R1").unwrap());
        ex.add_negative(g.node_by_name("C1").unwrap());
        let learned = Learner::default().learn(&g, &ex).unwrap();
        assert!(learned.selects(g.node_by_name("N2").unwrap()));
        assert!(learned.selects(g.node_by_name("N6").unwrap()));
        assert!(!learned.selects(g.node_by_name("R1").unwrap()));
        assert!(!learned.selects(g.node_by_name("C1").unwrap()));
        // The regex is displayable.
        let display = printer::print(&learned.regex, g.labels());
        assert!(!display.is_empty());
    }

    #[test]
    fn validated_paths_steer_learning_to_the_goal_query() {
        let g = figure1();
        let bus = g.label_id("bus").unwrap();
        let tram = g.label_id("tram").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        let mut ex = ExampleSet::new();
        // The user validates bus·tram·cinema for N2 and cinema for N6, as in
        // the paper's narrative, and labels R1/R2 sinks and C1 negative.
        ex.set_validated_path(g.node_by_name("N2").unwrap(), vec![bus, tram, cinema]);
        ex.set_validated_path(g.node_by_name("N6").unwrap(), vec![cinema]);
        ex.add_negative(g.node_by_name("C1").unwrap());
        ex.add_negative(g.node_by_name("R1").unwrap());
        ex.add_negative(g.node_by_name("R2").unwrap());
        let learned = Learner::default().learn(&g, &ex).unwrap();
        // The learned query must behave like the goal query on the examples'
        // words: accept cinema-reaching words over {tram,bus}, reject others.
        assert!(learned.dfa.accepts(&[cinema]));
        assert!(learned.dfa.accepts(&[bus, tram, cinema]));
        assert!(!learned.dfa.accepts(&[bus]));
        assert!(!learned.dfa.accepts(&[]));
        // And on the graph it selects the paper's answer set:
        for name in ["N1", "N2", "N4", "N6"] {
            assert!(
                learned.selects(g.node_by_name(name).unwrap()),
                "{name} should be selected"
            );
        }
        for name in ["C1", "C2", "R1", "R2"] {
            assert!(
                !learned.selects(g.node_by_name(name).unwrap()),
                "{name} should not be selected"
            );
        }
    }

    #[test]
    fn no_positive_examples_is_an_error() {
        let g = figure1();
        let mut ex = ExampleSet::new();
        ex.add_negative(g.node_by_name("N5").unwrap());
        assert_eq!(
            Learner::default().learn(&g, &ex).unwrap_err(),
            LearnError::NoPositiveExamples
        );
    }

    #[test]
    fn without_negatives_learner_still_covers_positives() {
        let g = figure1();
        let mut ex = ExampleSet::new();
        ex.add_positive(g.node_by_name("N4").unwrap());
        let learned = Learner::default().learn(&g, &ex).unwrap();
        assert!(learned.selects(g.node_by_name("N4").unwrap()));
    }

    #[test]
    fn inconsistent_labeling_is_detected() {
        let g = figure1();
        let mut ex = ExampleSet::new();
        // C2's only incoming structure means C2 has no outgoing paths; as a
        // positive it can never be selected by a non-nullable query.
        ex.add_positive(g.node_by_name("C2").unwrap());
        ex.add_negative(g.node_by_name("N5").unwrap());
        let err = Learner::default().learn(&g, &ex).unwrap_err();
        assert_eq!(
            err,
            LearnError::PositiveFullyCovered {
                node: g.node_by_name("C2").unwrap()
            }
        );
    }

    #[test]
    fn learned_query_is_equivalent_to_a_path_query_on_answers() {
        let g = figure1();
        let mut ex = ExampleSet::new();
        ex.add_positive(g.node_by_name("N4").unwrap());
        ex.add_positive(g.node_by_name("N6").unwrap());
        ex.add_negative(g.node_by_name("N5").unwrap());
        ex.add_negative(g.node_by_name("R1").unwrap());
        let learned = Learner::default().learn(&g, &ex).unwrap();
        // Re-evaluating the produced regex as a PathQuery gives the same
        // answer as the DFA the learner evaluated internally.
        let q = PathQuery::new(learned.regex.clone());
        let reevaluated = q.evaluate(&g);
        assert_eq!(reevaluated.nodes(), learned.answer.nodes());
    }

    #[test]
    fn learn_with_matches_learn_exactly() {
        let g = figure1();
        let exec = EvalHandle::naive(&g);
        let mut ex = ExampleSet::new();
        ex.add_positive(g.node_by_name("N2").unwrap());
        ex.add_positive(g.node_by_name("N6").unwrap());
        ex.add_negative(g.node_by_name("R1").unwrap());
        ex.add_negative(g.node_by_name("C1").unwrap());
        let learner = Learner::default();
        let coverage = NegativeCoverage::from_negatives(&g, ex.negatives(), learner.path_bound);
        let direct = learner.learn(&g, &ex).unwrap();
        let threaded = learner.learn_with(&g, &ex, &coverage, &exec).unwrap();
        assert_eq!(direct.regex, threaded.regex);
        assert_eq!(direct.answer, threaded.answer);
        assert_eq!(direct.selected_paths, threaded.selected_paths);
        // Repeating the same hypothesis is a cache hit.
        let before = exec.cache().stats();
        let again = learner.learn_with(&g, &ex, &coverage, &exec).unwrap();
        assert_eq!(again.answer, threaded.answer);
        assert_eq!(exec.cache().stats().0, before.0 + 1, "one more hit");
        // A coverage at the wrong bound is rebuilt rather than trusted.
        let coarse = NegativeCoverage::from_negatives(&g, ex.negatives(), 1);
        let rebuilt = learner.learn_with(&g, &ex, &coarse, &exec).unwrap();
        assert_eq!(rebuilt.regex, direct.regex);
        // Errors propagate identically.
        let empty = ExampleSet::new();
        let no_cov = NegativeCoverage::new(learner.path_bound);
        assert_eq!(
            learner.learn_with(&g, &empty, &no_cov, &exec).unwrap_err(),
            LearnError::NoPositiveExamples
        );
    }

    #[test]
    fn larger_bound_allows_longer_witnesses() {
        let g = figure1();
        let mut ex = ExampleSet::new();
        ex.add_positive(g.node_by_name("N2").unwrap());
        let short = Learner::with_bound(1).learn(&g, &ex).unwrap();
        let long = Learner::with_bound(4).learn(&g, &ex).unwrap();
        assert!(short.selected_paths[&g.node_by_name("N2").unwrap()].len() <= 1);
        assert!(!long.selected_paths.is_empty());
    }
}
