//! Step (i) of the learning algorithm: selecting, for every positive node, a
//! path that is not covered by any negative node.
//!
//! When the user has validated a path during the interaction (Figure 3(c)),
//! that word is used verbatim.  Otherwise the learner picks the *shortest*
//! uncovered word (ties broken lexicographically by label id), which is the
//! deterministic choice used by the second demo scenario.

use crate::error::LearnError;
use crate::examples::ExampleSet;
use gps_graph::{GraphBackend, NodeId, PathEnumerator, Word};
use gps_rpq::{EvalHandle, NegativeCoverage};
use std::collections::BTreeMap;

/// The words selected for the positive examples, keyed by node.
pub type SelectedPaths = BTreeMap<NodeId, Word>;

/// Selects one uncovered word per positive example.
///
/// * `bound` — the maximum path length considered;
/// * validated paths recorded in `examples` take precedence over automatic
///   selection but are still checked against the coverage.
pub fn select_paths<B: GraphBackend>(
    graph: &B,
    examples: &ExampleSet,
    coverage: &NegativeCoverage,
    bound: usize,
) -> Result<SelectedPaths, LearnError> {
    select_paths_with(graph, examples, coverage, bound, None)
}

/// [`select_paths`] reading every positive node's bounded words from a shared
/// per-snapshot word cache instead of re-enumerating its paths per learn call
/// — the positive re-check hot-spot fix.
///
/// When `exec` is present and its snapshot matches `graph`, the words come
/// from [`gps_rpq::EvalCache::bounded_words`] (computed once per `(snapshot,
/// bound)` and shared across sessions); otherwise selection enumerates
/// directly.  Both paths select byte-identical words.
pub fn select_paths_with<B: GraphBackend>(
    graph: &B,
    examples: &ExampleSet,
    coverage: &NegativeCoverage,
    bound: usize,
    exec: Option<&EvalHandle>,
) -> Result<SelectedPaths, LearnError> {
    let cached = exec
        .filter(|exec| exec.epoch() == graph.epoch())
        .map(|exec| exec.bounded_words(bound))
        .filter(|cached| cached.len() == graph.node_count());
    let mut selected = SelectedPaths::new();
    for positive in examples.positives() {
        if let Some(word) = examples.validated_path(positive) {
            if coverage.is_covered(word) {
                return Err(LearnError::ValidatedPathCovered { node: positive });
            }
            selected.insert(positive, word.clone());
            continue;
        }
        let word = match &cached {
            Some(cached) => smallest_uncovered_of(cached[positive.index()].iter(), coverage),
            None => smallest_uncovered_word(graph, positive, coverage, bound),
        }
        .ok_or(LearnError::PositiveFullyCovered { node: positive })?;
        selected.insert(positive, word);
    }
    Ok(selected)
}

/// The shortest word of `node` (length ≤ `bound`) not covered by the
/// negatives, ties broken lexicographically; `None` when every word is
/// covered (or the node has no outgoing path at all).
pub fn smallest_uncovered_word<B: GraphBackend>(
    graph: &B,
    node: NodeId,
    coverage: &NegativeCoverage,
    bound: usize,
) -> Option<Word> {
    // words_from returns a BTreeSet (lexicographic); pick by (len, word).
    smallest_uncovered_of(
        PathEnumerator::new(bound).words_from(graph, node).iter(),
        coverage,
    )
}

/// The `(len, word)`-minimal uncovered word among `words` (any order).
fn smallest_uncovered_of<'a>(
    words: impl Iterator<Item = &'a Word>,
    coverage: &NegativeCoverage,
) -> Option<Word> {
    words
        .filter(|w| !coverage.is_covered(w))
        .min_by(|a, b| a.len().cmp(&b.len()).then_with(|| a.cmp(b)))
        .cloned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::Graph;

    /// N2 -bus-> N1 -tram-> N4 -cinema-> C1; N2 -restaurant-> R1;
    /// N5 -restaurant-> R2; N6 -cinema-> C2.
    fn sample() -> Graph {
        let mut g = Graph::new();
        let n2 = g.add_node("N2");
        let n1 = g.add_node("N1");
        let n4 = g.add_node("N4");
        let c1 = g.add_node("C1");
        let r1 = g.add_node("R1");
        let n5 = g.add_node("N5");
        let r2 = g.add_node("R2");
        let n6 = g.add_node("N6");
        let c2 = g.add_node("C2");
        g.add_edge_by_name(n2, "bus", n1);
        g.add_edge_by_name(n2, "restaurant", r1);
        g.add_edge_by_name(n1, "tram", n4);
        g.add_edge_by_name(n4, "cinema", c1);
        g.add_edge_by_name(n5, "restaurant", r2);
        g.add_edge_by_name(n6, "cinema", c2);
        g
    }

    #[test]
    fn smallest_uncovered_prefers_short_words() {
        let g = sample();
        let n2 = g.node_by_name("N2").unwrap();
        let coverage = NegativeCoverage::new(3);
        let word = smallest_uncovered_word(&g, n2, &coverage, 3).unwrap();
        // Without negatives the shortest word wins: either "bus" or
        // "restaurant" (length 1); the lexicographically smaller label id is
        // "bus" (interned first).
        assert_eq!(word.len(), 1);
        assert_eq!(word[0], g.label_id("bus").unwrap());
    }

    #[test]
    fn negatives_push_selection_to_longer_words() {
        let g = sample();
        let n2 = g.node_by_name("N2").unwrap();
        let n5 = g.node_by_name("N5").unwrap();
        // N5 covers "restaurant"; additionally cover "bus"-ish prefixes by
        // hand: label N1 negative so that "bus", "bus·tram" and
        // "bus·tram·cinema"… no — N1's words are tram, tram·cinema, so they
        // do not cover N2's words.  Use a coverage built from N5 only and
        // check restaurant is skipped once bus is also covered by a custom
        // negative.
        let coverage = NegativeCoverage::from_negatives(&g, [n5], 3);
        let word = smallest_uncovered_word(&g, n2, &coverage, 3).unwrap();
        assert_eq!(word, vec![g.label_id("bus").unwrap()]);
    }

    #[test]
    fn fully_covered_node_yields_none() {
        let g = sample();
        let n6 = g.node_by_name("N6").unwrap();
        let n4 = g.node_by_name("N4").unwrap();
        // N4 covers the word "cinema", which is N6's only word.
        let coverage = NegativeCoverage::from_negatives(&g, [n4], 3);
        assert_eq!(smallest_uncovered_word(&g, n6, &coverage, 3), None);
        // A sink node has no words at all.
        let c1 = g.node_by_name("C1").unwrap();
        assert_eq!(
            smallest_uncovered_word(&g, c1, &NegativeCoverage::new(3), 3),
            None
        );
    }

    #[test]
    fn select_paths_uses_validated_words() {
        let g = sample();
        let n2 = g.node_by_name("N2").unwrap();
        let n6 = g.node_by_name("N6").unwrap();
        let bus = g.label_id("bus").unwrap();
        let tram = g.label_id("tram").unwrap();
        let cinema = g.label_id("cinema").unwrap();
        let mut examples = ExampleSet::new();
        examples.set_validated_path(n2, vec![bus, tram, cinema]);
        examples.add_positive(n6);
        let coverage = NegativeCoverage::new(3);
        let selected = select_paths(&g, &examples, &coverage, 3).unwrap();
        assert_eq!(selected[&n2], vec![bus, tram, cinema]);
        assert_eq!(selected[&n6], vec![cinema]);
    }

    #[test]
    fn cached_selection_is_byte_identical_to_direct_enumeration() {
        let g = sample();
        let exec = gps_rpq::EvalHandle::naive(&g);
        let n2 = g.node_by_name("N2").unwrap();
        let n5 = g.node_by_name("N5").unwrap();
        let n6 = g.node_by_name("N6").unwrap();
        let mut examples = ExampleSet::new();
        examples.add_positive(n2);
        examples.add_positive(n6);
        for (negatives, bound) in [(vec![], 3), (vec![n5], 3), (vec![n5], 2)] {
            let coverage = NegativeCoverage::from_negatives(&g, negatives, bound);
            let direct = select_paths(&g, &examples, &coverage, bound).unwrap();
            let cached = select_paths_with(&g, &examples, &coverage, bound, Some(&exec)).unwrap();
            assert_eq!(direct, cached, "bound {bound}");
        }
        // Error cases agree too: every word of N6 covered.
        let n4 = g.node_by_name("N4").unwrap();
        let coverage = NegativeCoverage::from_negatives(&g, [n4], 3);
        assert_eq!(
            select_paths(&g, &examples, &coverage, 3).unwrap_err(),
            select_paths_with(&g, &examples, &coverage, 3, Some(&exec)).unwrap_err(),
        );
        // A handle over a different graph falls back to direct enumeration.
        let mut other = Graph::new();
        let a = other.add_node("A");
        let b = other.add_node("B");
        other.add_edge_by_name(a, "x", b);
        let foreign = gps_rpq::EvalHandle::naive(&other);
        let coverage = NegativeCoverage::new(3);
        assert_eq!(
            select_paths(&g, &examples, &coverage, 3).unwrap(),
            select_paths_with(&g, &examples, &coverage, 3, Some(&foreign)).unwrap(),
        );
    }

    #[test]
    fn covered_validated_path_is_an_error() {
        let g = sample();
        let n2 = g.node_by_name("N2").unwrap();
        let n5 = g.node_by_name("N5").unwrap();
        let restaurant = g.label_id("restaurant").unwrap();
        let mut examples = ExampleSet::new();
        examples.set_validated_path(n2, vec![restaurant]);
        examples.add_negative(n5);
        let coverage = NegativeCoverage::from_negatives(&g, [n5], 3);
        let err = select_paths(&g, &examples, &coverage, 3).unwrap_err();
        assert_eq!(err, LearnError::ValidatedPathCovered { node: n2 });
    }

    #[test]
    fn fully_covered_positive_is_an_error() {
        let g = sample();
        let n6 = g.node_by_name("N6").unwrap();
        let n4 = g.node_by_name("N4").unwrap();
        let mut examples = ExampleSet::new();
        examples.add_positive(n6);
        examples.add_negative(n4);
        let coverage = NegativeCoverage::from_negatives(&g, [n4], 3);
        let err = select_paths(&g, &examples, &coverage, 3).unwrap_err();
        assert_eq!(err, LearnError::PositiveFullyCovered { node: n6 });
    }
}
