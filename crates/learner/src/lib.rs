//! # gps-learner — learning path queries from node examples
//!
//! The learning algorithm of the GPS paper (detailed in its companion
//! research paper "Learning path queries on graph databases", EDBT 2015)
//! constructs a path query consistent with a set of positively and negatively
//! labeled nodes in two steps:
//!
//! 1. **Path selection** — for each positive node, pick a path that is not
//!    covered by any negative node (the user may override this choice during
//!    path validation);
//! 2. **Generalization** — build the prefix-tree acceptor of the selected
//!    paths and merge states (RPNI order) as long as no word of a negative
//!    node becomes accepted.
//!
//! The result is a DFA, converted back to a regular expression for display.
//!
//! Modules:
//! * [`examples`] — labeled example sets;
//! * [`consistency`] — consistency of queries and of example sets;
//! * [`path_selection`] — smallest-uncovered-path selection;
//! * [`merge`] — RPNI-style state merging guarded by negative words;
//! * [`learn`] — the end-to-end learner;
//! * [`characteristic`] — characteristic samples for a goal query (the
//!   examples that guarantee exact recovery);
//! * [`error`] — error types.
//!
//! ## Example
//!
//! ```
//! use gps_graph::Graph;
//! use gps_learner::{examples::ExampleSet, learn::Learner};
//!
//! // N2 -bus-> N1 -tram-> N4 -cinema-> C1;  N5 -restaurant-> R2
//! let mut g = Graph::new();
//! let n2 = g.add_node("N2");
//! let n1 = g.add_node("N1");
//! let n4 = g.add_node("N4");
//! let c1 = g.add_node("C1");
//! let n5 = g.add_node("N5");
//! let r2 = g.add_node("R2");
//! g.add_edge_by_name(n2, "bus", n1);
//! g.add_edge_by_name(n1, "tram", n4);
//! g.add_edge_by_name(n4, "cinema", c1);
//! g.add_edge_by_name(n5, "restaurant", r2);
//!
//! let mut examples = ExampleSet::new();
//! examples.add_positive(n2);
//! examples.add_positive(n4);
//! examples.add_negative(n5);
//!
//! let learned = Learner::default().learn(&g, &examples).unwrap();
//! // The learned query selects both positives and not the negative.
//! assert!(learned.answer.contains(n2));
//! assert!(learned.answer.contains(n4));
//! assert!(!learned.answer.contains(n5));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characteristic;
pub mod consistency;
pub mod error;
pub mod examples;
pub mod learn;
pub mod merge;
pub mod metrics;
pub mod path_selection;

pub use error::LearnError;
pub use examples::{ExampleSet, Label};
pub use learn::{LearnedQuery, Learner};
