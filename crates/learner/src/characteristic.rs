//! Characteristic samples.
//!
//! The companion research paper shows that after a number of examples
//! polynomial in the size of the goal query, the learner returns a query
//! equivalent to the goal.  This module builds such *characteristic* example
//! sets for a goal query on a given graph: it labels every node by the goal
//! query's answer and attaches, to each positive node, the witness word the
//! goal query accepts — exactly the information a perfectly cooperative user
//! would provide through the interactive protocol with path validation.

use crate::examples::ExampleSet;
use gps_graph::GraphBackend;
use gps_rpq::PathQuery;

/// Builds the example set a fully cooperative user would provide for `goal`
/// on `graph`: every selected node is a positive example with its shortest
/// witness path validated, every other node is a negative example.
pub fn characteristic_sample<B: GraphBackend>(graph: &B, goal: &PathQuery) -> ExampleSet {
    let answer = goal.evaluate(graph);
    let mut examples = ExampleSet::new();
    for node in graph.nodes() {
        if answer.contains(node) {
            match goal.witness(graph, node) {
                Some(path) => examples.set_validated_path(node, path.word),
                None => {
                    // Selected without a finite witness can only happen for
                    // nullable queries (ε-witness); record the positive label
                    // with the empty word.
                    examples.set_validated_path(node, Vec::new());
                }
            }
        } else {
            examples.add_negative(node);
        }
    }
    examples
}

/// Builds a *partial* characteristic sample containing at most
/// `max_positives` positive and `max_negatives` negative examples (taken in
/// node-id order).  Used by the experiments that study convergence as a
/// function of the number of examples.
pub fn partial_sample<B: GraphBackend>(
    graph: &B,
    goal: &PathQuery,
    max_positives: usize,
    max_negatives: usize,
) -> ExampleSet {
    let full = characteristic_sample(graph, goal);
    let mut examples = ExampleSet::new();
    for node in full.positives().into_iter().take(max_positives) {
        match full.validated_path(node) {
            Some(word) => examples.set_validated_path(node, word.clone()),
            None => {
                examples.add_positive(node);
            }
        }
    }
    for node in full.negatives().into_iter().take(max_negatives) {
        examples.add_negative(node);
    }
    examples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::learn::Learner;
    use gps_graph::Graph;

    fn transport_graph() -> Graph {
        let mut g = Graph::new();
        for name in ["N1", "N2", "N3", "N4", "C1", "C2", "R1"] {
            g.add_node(name);
        }
        let n = |g: &Graph, name: &str| g.node_by_name(name).unwrap();
        let edges = [
            ("N1", "tram", "N2"),
            ("N2", "bus", "N3"),
            ("N3", "cinema", "C1"),
            ("N4", "cinema", "C2"),
            ("N1", "restaurant", "R1"),
        ];
        for (s, l, t) in edges {
            let s = n(&g, s);
            let t = n(&g, t);
            g.add_edge_by_name(s, l, t);
        }
        g
    }

    #[test]
    fn characteristic_sample_labels_every_node() {
        let g = transport_graph();
        let goal = PathQuery::parse("(tram+bus)*.cinema", g.labels()).unwrap();
        let sample = characteristic_sample(&g, &goal);
        assert_eq!(sample.len(), g.node_count());
        // Positives are exactly the goal answer.
        let answer = goal.evaluate(&g);
        for node in g.nodes() {
            assert_eq!(
                answer.contains(node),
                sample.positives().contains(&node),
                "node {}",
                g.node_name(node)
            );
        }
    }

    #[test]
    fn positives_carry_accepted_witness_words() {
        let g = transport_graph();
        let goal = PathQuery::parse("(tram+bus)*.cinema", g.labels()).unwrap();
        let sample = characteristic_sample(&g, &goal);
        for node in sample.positives() {
            let word = sample.validated_path(node).expect("witness recorded");
            assert!(goal.dfa().accepts(word));
        }
    }

    #[test]
    fn learner_recovers_goal_behaviour_from_characteristic_sample() {
        let g = transport_graph();
        let goal = PathQuery::parse("(tram+bus)*.cinema", g.labels()).unwrap();
        let sample = characteristic_sample(&g, &goal);
        let learned = Learner::default().learn(&g, &sample).unwrap();
        let goal_answer = goal.evaluate(&g);
        assert_eq!(learned.answer.nodes(), goal_answer.nodes());
    }

    #[test]
    fn partial_sample_respects_limits() {
        let g = transport_graph();
        let goal = PathQuery::parse("cinema", g.labels()).unwrap();
        let sample = partial_sample(&g, &goal, 1, 2);
        assert!(sample.positive_count() <= 1);
        assert!(sample.negative_count() <= 2);
        let full = partial_sample(&g, &goal, usize::MAX, usize::MAX);
        assert_eq!(full.len(), g.node_count());
    }

    #[test]
    fn nullable_goal_marks_all_nodes_positive() {
        let g = transport_graph();
        let goal = PathQuery::parse("tram*", g.labels()).unwrap();
        let sample = characteristic_sample(&g, &goal);
        assert_eq!(sample.positive_count(), g.node_count());
        assert_eq!(sample.negative_count(), 0);
        // Every witness is the empty word or an accepted word.
        for node in sample.positives() {
            let word = sample.validated_path(node).unwrap();
            assert!(goal.dfa().accepts(word));
        }
    }
}
