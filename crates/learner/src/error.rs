//! Errors produced by the learner.

use gps_graph::NodeId;
use std::fmt;

/// Reasons a query cannot be learned from the given examples.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LearnError {
    /// No positive example was provided — the hypothesis space is not
    /// constrained from below and the learner would return the empty query.
    NoPositiveExamples,
    /// Every path of a positive node (up to the length bound) is covered by
    /// a negative node, so no query within the bound can be consistent.
    PositiveFullyCovered {
        /// The offending positive node.
        node: NodeId,
    },
    /// The user validated a path for a positive node, but that path is
    /// covered by a negative node.
    ValidatedPathCovered {
        /// The positive node whose validated path conflicts.
        node: NodeId,
    },
    /// The examples contain no consistent labeling because the learned
    /// automaton still selects a negative node (this indicates the length
    /// bound was too small for the generalization to avoid the negatives).
    InconsistentResult {
        /// A negative node selected by the learned query.
        node: NodeId,
    },
}

impl fmt::Display for LearnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LearnError::NoPositiveExamples => {
                write!(f, "cannot learn a query without positive examples")
            }
            LearnError::PositiveFullyCovered { node } => write!(
                f,
                "positive example {node} has no path uncovered by negative examples (inconsistent labeling within the length bound)"
            ),
            LearnError::ValidatedPathCovered { node } => write!(
                f,
                "the validated path of positive example {node} is covered by a negative example"
            ),
            LearnError::InconsistentResult { node } => write!(
                f,
                "the generalized query still selects negative example {node}"
            ),
        }
    }
}

impl std::error::Error for LearnError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_messages_mention_the_node() {
        let e = LearnError::PositiveFullyCovered {
            node: NodeId::new(7),
        };
        assert!(e.to_string().contains("n7"));
        let e = LearnError::ValidatedPathCovered {
            node: NodeId::new(3),
        };
        assert!(e.to_string().contains("n3"));
        let e = LearnError::InconsistentResult {
            node: NodeId::new(1),
        };
        assert!(e.to_string().contains("n1"));
        assert!(LearnError::NoPositiveExamples
            .to_string()
            .contains("positive"));
    }

    #[test]
    fn errors_are_comparable() {
        assert_eq!(
            LearnError::NoPositiveExamples,
            LearnError::NoPositiveExamples
        );
        assert_ne!(
            LearnError::NoPositiveExamples,
            LearnError::PositiveFullyCovered {
                node: NodeId::new(0)
            }
        );
    }
}
