//! Consistency checks.
//!
//! A query is *consistent* with a set of examples when it selects every
//! positive node and no negative node.  The static-labeling scenario of the
//! demo also needs to detect example sets for which *no* query (within the
//! length bound) can be consistent — e.g. when a positive node's every
//! bounded path is covered by negative nodes.

use crate::examples::ExampleSet;
use gps_graph::{GraphBackend, NodeId};
use gps_rpq::{NegativeCoverage, PathQuery, QueryAnswer};

/// The verdict of checking a query against an example set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Consistency {
    /// The query selects all positives and no negatives.
    Consistent,
    /// A positive node is not selected.
    MissesPositive(NodeId),
    /// A negative node is selected.
    SelectsNegative(NodeId),
}

impl Consistency {
    /// Returns `true` for [`Consistency::Consistent`].
    pub fn is_consistent(&self) -> bool {
        matches!(self, Consistency::Consistent)
    }
}

/// Checks whether `query` is consistent with `examples` on `graph`.
pub fn check_query<B: GraphBackend>(
    graph: &B,
    query: &PathQuery,
    examples: &ExampleSet,
) -> Consistency {
    check_answer(&query.evaluate(graph), examples)
}

/// Checks an already-computed answer against the example set.
pub fn check_answer(answer: &QueryAnswer, examples: &ExampleSet) -> Consistency {
    for node in examples.positives() {
        if !answer.contains(node) {
            return Consistency::MissesPositive(node);
        }
    }
    for node in examples.negatives() {
        if answer.contains(node) {
            return Consistency::SelectsNegative(node);
        }
    }
    Consistency::Consistent
}

/// A reason why an example set cannot admit any consistent query within the
/// given path-length bound.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Infeasibility {
    /// A positive node has no path at all (within the bound) that is not
    /// covered by the negative examples.
    PositiveCovered(NodeId),
}

/// Checks whether the example set is *satisfiable* within the path-length
/// bound: every positive node must have at least one bounded path not covered
/// by the negative nodes.  Returns the first obstruction found, or `None`
/// when the set is satisfiable.
///
/// This is the test the static-labeling scenario uses to tell the user her
/// labeling is inconsistent.
pub fn check_satisfiable<B: GraphBackend>(
    graph: &B,
    examples: &ExampleSet,
    bound: usize,
) -> Option<Infeasibility> {
    let coverage = NegativeCoverage::from_negatives(graph, examples.negatives(), bound);
    for positive in examples.positives() {
        if coverage.uncovered_count(graph, positive) == 0 {
            return Some(Infeasibility::PositiveCovered(positive));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use gps_graph::Graph;

    /// N2 -bus-> N1 -tram-> N4 -cinema-> C1; N5 -bus-> N1 (so N5's only
    /// words are prefixes of bus·tram·cinema); N6 -cinema-> C2.
    fn sample() -> Graph {
        let mut g = Graph::new();
        let n2 = g.add_node("N2");
        let n1 = g.add_node("N1");
        let n4 = g.add_node("N4");
        let c1 = g.add_node("C1");
        let n5 = g.add_node("N5");
        let n6 = g.add_node("N6");
        let c2 = g.add_node("C2");
        g.add_edge_by_name(n2, "bus", n1);
        g.add_edge_by_name(n1, "tram", n4);
        g.add_edge_by_name(n4, "cinema", c1);
        g.add_edge_by_name(n5, "bus", n1);
        g.add_edge_by_name(n6, "cinema", c2);
        g
    }

    #[test]
    fn consistent_query_passes() {
        let g = sample();
        let q = PathQuery::parse("(tram+bus)*.cinema", g.labels()).unwrap();
        let mut ex = ExampleSet::new();
        ex.add_positive(g.node_by_name("N2").unwrap());
        ex.add_positive(g.node_by_name("N6").unwrap());
        ex.add_negative(g.node_by_name("C1").unwrap());
        assert_eq!(check_query(&g, &q, &ex), Consistency::Consistent);
        assert!(check_query(&g, &q, &ex).is_consistent());
    }

    #[test]
    fn missing_positive_is_reported() {
        let g = sample();
        let q = PathQuery::parse("cinema", g.labels()).unwrap();
        let mut ex = ExampleSet::new();
        let n2 = g.node_by_name("N2").unwrap();
        ex.add_positive(n2);
        assert_eq!(check_query(&g, &q, &ex), Consistency::MissesPositive(n2));
    }

    #[test]
    fn selected_negative_is_reported() {
        let g = sample();
        let q = PathQuery::parse("(tram+bus)*.cinema", g.labels()).unwrap();
        let mut ex = ExampleSet::new();
        ex.add_positive(g.node_by_name("N2").unwrap());
        let n4 = g.node_by_name("N4").unwrap();
        ex.add_negative(n4);
        assert_eq!(check_query(&g, &q, &ex), Consistency::SelectsNegative(n4));
    }

    #[test]
    fn check_answer_works_on_precomputed_answers() {
        let g = sample();
        let q = PathQuery::parse("cinema", g.labels()).unwrap();
        let answer = q.evaluate(&g);
        let mut ex = ExampleSet::new();
        ex.add_positive(g.node_by_name("N4").unwrap());
        ex.add_positive(g.node_by_name("N6").unwrap());
        ex.add_negative(g.node_by_name("N2").unwrap());
        assert_eq!(check_answer(&answer, &ex), Consistency::Consistent);
        // Positives are checked before negatives: an answer violating both
        // reports the missing positive first.
        let mut ex2 = ExampleSet::new();
        ex2.add_positive(g.node_by_name("N2").unwrap());
        ex2.add_negative(g.node_by_name("N4").unwrap());
        assert_eq!(
            check_answer(&answer, &ex2),
            Consistency::MissesPositive(g.node_by_name("N2").unwrap())
        );
    }

    #[test]
    fn satisfiability_detects_covered_positives() {
        let g = sample();
        let n2 = g.node_by_name("N2").unwrap();
        let n5 = g.node_by_name("N5").unwrap();
        let mut ex = ExampleSet::new();
        // N5's words (bus, bus·tram, bus·tram·cinema) are a superset of N2's
        // words within bound 3, so labeling N5 negative and N2 positive is
        // unsatisfiable within that bound.
        ex.add_positive(n2);
        ex.add_negative(n5);
        assert_eq!(
            check_satisfiable(&g, &ex, 3),
            Some(Infeasibility::PositiveCovered(n2))
        );
        // A positive whose words are not all covered is fine: N1's words
        // (tram, tram·cinema) are disjoint from N2's bus-prefixed words.
        let n1 = g.node_by_name("N1").unwrap();
        let mut ex2 = ExampleSet::new();
        ex2.add_positive(n1);
        ex2.add_negative(n2);
        assert_eq!(check_satisfiable(&g, &ex2, 3), None);
    }

    #[test]
    fn empty_example_set_is_satisfiable() {
        let g = sample();
        assert_eq!(check_satisfiable(&g, &ExampleSet::new(), 3), None);
    }
}
