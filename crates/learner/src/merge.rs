//! Step (ii) of the learning algorithm: generalization of the prefix-tree
//! acceptor by state merging.
//!
//! The merger follows the RPNI discipline: states of the PTA are considered
//! in breadth-first order; each is tentatively merged with every previously
//! kept ("red") state, folding the automaton back into a deterministic one;
//! a merge is committed only if the resulting language still excludes every
//! *negative word* (every bounded word of every negative node).  Because
//! merging only ever grows the language, the positive sample stays accepted
//! throughout.

use gps_automata::pta::build_pta_with_order;
use gps_automata::Dfa;
use gps_graph::{LabelId, Word};
use std::collections::BTreeMap;

/// A mutable, mergeable DFA working copy with union-find state
/// representatives.
#[derive(Debug, Clone)]
struct MergeTable {
    transitions: Vec<BTreeMap<LabelId, usize>>,
    accepting: Vec<bool>,
    parent: Vec<usize>,
    start: usize,
}

impl MergeTable {
    fn from_dfa(dfa: &Dfa) -> Self {
        let n = dfa.state_count();
        let mut transitions = vec![BTreeMap::new(); n];
        let mut accepting = vec![false; n];
        for state in 0..n {
            accepting[state] = dfa.is_accepting(state);
            for (label, target) in dfa.transitions_from(state) {
                transitions[state].insert(label, target);
            }
        }
        Self {
            transitions,
            accepting,
            parent: (0..n).collect(),
            start: dfa.start(),
        }
    }

    fn find(&mut self, state: usize) -> usize {
        if self.parent[state] != state {
            let root = self.find(self.parent[state]);
            self.parent[state] = root;
            root
        } else {
            state
        }
    }

    /// Merges the classes of `a` and `b` and restores determinism by folding
    /// conflicting transitions (recursively merging their targets).
    fn merge(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return;
        }
        // Keep the smaller id as representative so the PTA root never loses
        // its identity.
        let (keep, absorb) = if ra < rb { (ra, rb) } else { (rb, ra) };
        self.parent[absorb] = keep;
        self.accepting[keep] |= self.accepting[absorb];
        let absorbed: Vec<(LabelId, usize)> = self.transitions[absorb]
            .iter()
            .map(|(&l, &t)| (l, t))
            .collect();
        for (label, target) in absorbed {
            match self.transitions[keep].get(&label).copied() {
                Some(existing) => {
                    // Deterministic folding: the two targets must be merged.
                    self.merge(existing, target);
                    // `keep` may have been absorbed by a recursive merge;
                    // re-resolve before continuing.
                }
                None => {
                    self.transitions[keep].insert(label, target);
                }
            }
        }
    }

    /// Runs the folded automaton on a word; returns `true` when accepted.
    fn accepts(&mut self, word: &[LabelId]) -> bool {
        let mut state = self.find(self.start);
        for &symbol in word {
            let next = match self.transitions[state].get(&symbol).copied() {
                Some(t) => t,
                None => return false,
            };
            state = self.find(next);
        }
        self.accepting[state]
    }

    /// Extracts the quotient DFA (reachable classes only, renumbered).
    fn quotient_dfa(&mut self) -> Dfa {
        let n = self.parent.len();
        // Resolve representatives.
        let reps: Vec<usize> = (0..n).map(|s| self.find(s)).collect();
        let mut renumber: BTreeMap<usize, usize> = BTreeMap::new();
        let mut dfa = Dfa::empty_language();
        let start_rep = reps[self.start];
        renumber.insert(start_rep, 0);
        dfa.set_accepting(0, self.accepting[start_rep]);
        let mut queue = std::collections::VecDeque::from([start_rep]);
        while let Some(rep) = queue.pop_front() {
            let from = renumber[&rep];
            let outgoing: Vec<(LabelId, usize)> = self.transitions[rep]
                .iter()
                .map(|(&l, &t)| (l, t))
                .collect();
            for (label, target) in outgoing {
                let target_rep = reps[target];
                let to = match renumber.get(&target_rep) {
                    Some(&id) => id,
                    None => {
                        let id = dfa.add_state(self.accepting[target_rep]);
                        renumber.insert(target_rep, id);
                        queue.push_back(target_rep);
                        id
                    }
                };
                dfa.add_transition(from, label, to);
            }
        }
        dfa
    }
}

/// Generalizes the PTA of `positive_words` by RPNI-style state merging,
/// keeping the language disjoint from `negative_words`.
///
/// Returns a DFA that accepts every positive word and none of the negative
/// words.  Without negative words the result collapses towards the most
/// general automaton compatible with the positive alphabet usage.
pub fn generalize(positive_words: &[Word], negative_words: &[Word]) -> Dfa {
    let (pta, order) = build_pta_with_order(positive_words);
    let mut table = MergeTable::from_dfa(&pta);

    // Red states: kept as distinct states of the hypothesis.  Start with the
    // root.
    let mut red: Vec<usize> = vec![order[0]];

    for &blue in order.iter().skip(1) {
        // Skip states already absorbed by a previous merge.
        if table.find(blue) != blue {
            continue;
        }
        let mut merged = false;
        for &r in &red {
            // Tentative merge on a scratch copy.
            let mut scratch = table.clone();
            scratch.merge(r, blue);
            if negative_words.iter().all(|w| !scratch.accepts(w)) {
                table = scratch;
                merged = true;
                break;
            }
        }
        if !merged {
            red.push(blue);
        }
    }
    gps_automata::minimize::minimize(&table.quotient_dfa())
}

/// Convenience wrapper: generalizes and also checks the stated invariants,
/// returning `None` if they do not hold (they always should; the check
/// guards against future regressions and is cheap at demo scale).
pub fn generalize_checked(positive_words: &[Word], negative_words: &[Word]) -> Option<Dfa> {
    let dfa = generalize(positive_words, negative_words);
    for word in positive_words {
        if !dfa.accepts(word) {
            return None;
        }
    }
    for word in negative_words {
        if dfa.accepts(word) {
            return None;
        }
    }
    Some(dfa)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn l(i: u32) -> LabelId {
        LabelId::new(i)
    }

    #[test]
    fn no_negatives_collapses_to_a_general_language() {
        // Positive words: a, aa, aaa → expect something like a* or a+ (all
        // positives accepted).
        let positives = vec![vec![l(0)], vec![l(0); 2], vec![l(0); 3]];
        let dfa = generalize(&positives, &[]);
        for p in &positives {
            assert!(dfa.accepts(p));
        }
        // Generalization merges the chain into a loop, so longer words are
        // accepted too.
        assert!(dfa.accepts(&[l(0); 10]));
        assert!(dfa.state_count() <= 2);
    }

    #[test]
    fn negatives_block_overgeneralization() {
        // Positives: a, aa ; negative: aaa.  The learner must keep the
        // counting structure that rejects aaa.
        let positives = vec![vec![l(0)], vec![l(0); 2]];
        let negatives = vec![vec![l(0); 3]];
        let dfa = generalize(&positives, &negatives);
        assert!(dfa.accepts(&[l(0)]));
        assert!(dfa.accepts(&[l(0); 2]));
        assert!(!dfa.accepts(&[l(0); 3]));
    }

    #[test]
    fn paper_example_generalizes_to_the_goal_query() {
        // tram = 0, bus = 1, cinema = 2.
        // Selected positive paths: bus·tram·cinema (for N2) and cinema (for
        // N6); negative words: those of N5 — in the paper's Figure 1, N5 has
        // paths tram·…, restaurant — model a few of them.
        let tram = l(0);
        let bus = l(1);
        let cinema = l(2);
        let restaurant = l(3);
        let positives = vec![vec![bus, tram, cinema], vec![cinema]];
        let negatives = vec![vec![restaurant], vec![tram, restaurant], vec![tram, bus]];
        let dfa = generalize(&positives, &negatives);
        // All positives accepted, no negative accepted.
        assert!(dfa.accepts(&[bus, tram, cinema]));
        assert!(dfa.accepts(&[cinema]));
        for n in &negatives {
            assert!(!dfa.accepts(n));
        }
        // The generalization accepts other (tram+bus)*·cinema words.
        assert!(dfa.accepts(&[tram, cinema]) || dfa.accepts(&[bus, cinema]));
    }

    #[test]
    fn generalize_checked_validates_invariants() {
        let positives = vec![vec![l(0), l(1)], vec![l(1)]];
        let negatives = vec![vec![l(0)], vec![l(0), l(0)]];
        let dfa = generalize_checked(&positives, &negatives).expect("invariants hold");
        assert!(dfa.accepts(&[l(0), l(1)]));
        assert!(!dfa.accepts(&[l(0)]));
    }

    #[test]
    fn empty_positive_sample_rejects_everything_nonempty() {
        let dfa = generalize(&[], &[vec![l(0)]]);
        assert!(!dfa.accepts(&[l(0)]));
        assert!(!dfa.accepts(&[]));
    }

    #[test]
    fn single_word_sample_without_negatives() {
        let positives = vec![vec![l(1), l(0), l(2)]];
        let dfa = generalize(&positives, &[]);
        assert!(dfa.accepts(&[l(1), l(0), l(2)]));
    }

    #[test]
    fn disjoint_alternatives_are_preserved() {
        // Positives: ab, c ; negatives: a, b, ba.
        let positives = vec![vec![l(0), l(1)], vec![l(2)]];
        let negatives = vec![vec![l(0)], vec![l(1)], vec![l(1), l(0)]];
        let dfa = generalize(&positives, &negatives);
        assert!(dfa.accepts(&[l(0), l(1)]));
        assert!(dfa.accepts(&[l(2)]));
        assert!(!dfa.accepts(&[l(0)]));
        assert!(!dfa.accepts(&[l(1)]));
        assert!(!dfa.accepts(&[l(1), l(0)]));
    }

    #[test]
    fn merge_table_accepts_matches_dfa_semantics() {
        let positives = vec![vec![l(0)], vec![l(0), l(1)]];
        let (pta, _) = build_pta_with_order(&positives);
        let mut table = MergeTable::from_dfa(&pta);
        assert!(table.accepts(&[l(0)]));
        assert!(table.accepts(&[l(0), l(1)]));
        assert!(!table.accepts(&[l(1)]));
        assert!(!table.accepts(&[]));
    }
}
