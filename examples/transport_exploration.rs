//! Exploring a larger generated transport network with path queries and
//! interactive specification: evaluates the transport query workload,
//! prints workload statistics, and measures how many interactions the
//! interactive protocol needs per goal query.
//!
//! Run with `cargo run --example transport_exploration -- [neighborhoods]`.

use gps_datasets::queries::transport_workload;
use gps_datasets::transport::{generate, TransportConfig};
use gps_graph::stats::GraphStats;
use gps_interactive::session::{Session, SessionConfig};
use gps_interactive::strategy::InformativePathsStrategy;
use gps_interactive::user::SimulatedUser;

fn main() {
    let neighborhoods: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(36);

    let network = generate(&TransportConfig::with_neighborhoods(neighborhoods, 42));
    let graph = &network.graph;
    let stats = GraphStats::compute(graph);
    println!("generated transport network: {}", stats.summary());
    println!("label usage:");
    for (label, count) in gps_graph::stats::label_usage(graph) {
        println!("  {label:>12}: {count} edges");
    }

    println!("\n=== query workload ===");
    let workload = transport_workload(graph);
    for query in &workload.queries {
        let answer = query.evaluate(graph);
        println!(
            "{:<32} selects {:>4} / {} nodes",
            query.display(graph.labels()),
            answer.len(),
            graph.node_count()
        );
    }

    println!("\n=== interactive specification per goal query ===");
    println!(
        "{:<32} {:>12} {:>8} {:>12}",
        "goal", "interactions", "zooms", "goal reached"
    );
    for goal in &workload.queries {
        let answer = goal.evaluate(graph);
        if answer.is_empty() {
            // An empty goal cannot be demonstrated through positive examples.
            continue;
        }
        let mut user = SimulatedUser::new(goal.clone(), graph);
        let mut strategy = InformativePathsStrategy::default();
        let mut session = Session::new(graph, SessionConfig::default());
        let outcome = session.run(&mut strategy, &mut user);
        let reached = outcome
            .learned
            .as_ref()
            .map(|l| l.answer.nodes() == answer.nodes())
            .unwrap_or(false);
        println!(
            "{:<32} {:>12} {:>8} {:>12}",
            goal.display(graph.labels()),
            outcome.stats.interactions,
            outcome.stats.zooms,
            reached
        );
    }
}
