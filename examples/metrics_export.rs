//! Observability: wire a metrics registry through the full stack and export.
//!
//! Builds a durable GPS service on the figure-1 transport graph with a
//! [`MetricsRegistry`] installed, drives a mixed workload (interactive
//! sessions, live updates, a simulated crash + recovery), then prints the
//! resulting metrics twice — once as a Prometheus text exposition ready for
//! a `/metrics` endpoint, once as a JSON document — followed by the bounded
//! audit-event trail.  Everything is observational: run the same workload
//! without `.metrics(...)` and the transcripts are byte-identical.
//!
//! Run with `cargo run --example metrics_export`.

use gps_core::prelude::*;
use gps_core::service::GpsService;
use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
use std::sync::Arc;

fn builder(registry: &Arc<MetricsRegistry>) -> gps_core::GpsBuilder {
    let (graph, _) = figure1_graph();
    Engine::builder(graph)
        .eval_mode(EvalMode::Frontier)
        .checkpoint_every_n_publishes(2)
        .metrics(Arc::clone(registry))
}

fn main() {
    let dir = std::env::temp_dir().join(format!("gps-metrics-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // One registry outlives the service; a restart keeps extending the same
    // series, so recovery time and pre-crash traffic land in one export.
    let registry = Arc::new(MetricsRegistry::enabled());

    // First life: serve a few users, publish two updates (the second one
    // crosses the checkpoint threshold), then "crash".
    {
        let (service, _) = GpsService::open_durable(&dir, builder(&registry)).expect("store opens");
        let goals = vec![
            MOTIVATING_QUERY.to_string(),
            "cinema".to_string(),
            "restaurant".to_string(),
        ];
        service.serve(&goals, 2).expect("sessions halt");
        service
            .update(
                GraphUpdate::new()
                    .add_node("C9")
                    .add_edge("N5", "cinema", "C9"),
            )
            .expect("publish");
        service
            .update(GraphUpdate::new().add_edge("C9", "bus", "N1"))
            .expect("publish");
    }

    // Second life: recovery replays the WAL (timed into
    // gps_core_recovery_replay_ns), then more traffic.
    let (service, report) = GpsService::open_durable(&dir, builder(&registry)).expect("reopens");
    println!(
        "recovered epoch {} ({} publishes replayed)\n",
        report.current_epoch, report.replayed_publishes
    );
    service
        .serve(&[MOTIVATING_QUERY.to_string()], 1)
        .expect("sessions halt");

    // Export 1: Prometheus text exposition, e.g. behind `GET /metrics`.
    let text = service.metrics_text();
    gps_core::telemetry::validate_prometheus_text(&text).expect("valid exposition");
    println!("=== Prometheus text exposition ===\n{text}");

    // Export 2: a JSON document for dashboards and diffing.
    let json = service.metrics_json();
    gps_core::telemetry::validate_json(&json).expect("valid JSON");
    println!("=== JSON ===\n{json}\n");

    // The audit trail: a bounded ring of lifecycle events.
    println!("=== audit events ===");
    for event in service.metrics().events {
        let fields: Vec<String> = event
            .fields
            .iter()
            .map(|(key, value)| format!("{key}={value}"))
            .collect();
        println!("{:<18} {}", event.kind, fields.join(" "));
    }

    let _ = std::fs::remove_dir_all(&dir);
}
