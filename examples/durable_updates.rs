//! Durable live updates: stage → publish → restart → recover.
//!
//! Opens a file-backed GPS service on the figure-1 transport graph, publishes
//! a batch of live updates (each publish fsyncs a commit record into the
//! write-ahead log), stages one more batch *without* publishing it, then
//! drops the service — simulating a crash — and reopens the same directory.
//! Recovery replays the committed publishes on top of the last checkpoint,
//! discards the staged-but-unpublished batch, and the recovered store serves
//! the exact session transcript the pre-crash store did (asserted
//! byte-for-byte via the snapshot encoding).
//!
//! Run with `cargo run --example durable_updates`.

use gps_core::service::GpsService;
use gps_core::versioned::GraphUpdate;
use gps_core::{Engine, EvalMode};
use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
use gps_store::encode_snapshot;

fn builder() -> gps_core::GpsBuilder {
    let (graph, _) = figure1_graph();
    Engine::builder(graph)
        .eval_mode(EvalMode::Frontier)
        .checkpoint_every_n_publishes(8)
}

fn main() {
    let dir = std::env::temp_dir().join(format!("gps-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // First life: a fresh directory gets a base checkpoint of epoch 0.
    let (service, report) = GpsService::open_durable(&dir, builder()).expect("store opens");
    println!(
        "opened {:?}: created={}, epoch {}",
        dir, report.created, report.current_epoch
    );

    // Publish two update batches; each publish is durable the moment its
    // commit record is fsynced, *before* readers can see the new epoch.
    for (label, update) in [
        (
            "open a cinema",
            GraphUpdate::new()
                .add_node("C9")
                .add_edge("N5", "cinema", "C9"),
        ),
        (
            "reroute the bus",
            GraphUpdate::new()
                .add_edge("N5", "bus", "N1")
                .remove_edge("N2", "restaurant", "R1"),
        ),
    ] {
        let report = service.update(update).expect("update applies");
        println!(
            "published '{label}': epoch {} (+{} nodes, +{}/-{} edges, {} WAL bytes, fsync {:?})",
            report.epoch,
            report.added_nodes,
            report.added_edges,
            report.removed_edges,
            report.durability.wal_bytes,
            report.durability.fsync
        );
    }

    // Stage a third batch but never publish it — a crash loses it, by design.
    service
        .store()
        .stage(GraphUpdate::new().add_node("GHOST"))
        .expect("staging appends to the log");
    println!("staged (not published): add node GHOST");

    // Remember what the pre-crash store would tell a user.
    let outcome = service.serve_one(MOTIVATING_QUERY).expect("session halts");
    let snapshot_before = encode_snapshot(service.core().snapshot());
    println!(
        "pre-crash session: {:?} after {} interactions",
        outcome.halt_reason, outcome.stats.interactions
    );

    // Crash.  (Dropping the service closes the log; a real kill -9 at any
    // byte boundary recovers the same way — the conformance suite truncates
    // the log at every offset to prove it.)
    drop(service);

    // Second life: recovery = last checkpoint + committed WAL suffix.
    let (service, report) = GpsService::open_durable(&dir, builder()).expect("store reopens");
    println!(
        "\nrecovered: epoch {} (replayed {} publishes / {} ops, discarded {} uncommitted bytes)",
        report.current_epoch,
        report.replayed_publishes,
        report.replayed_ops,
        report.discarded_bytes
    );
    assert_eq!(report.current_epoch, 2);
    assert!(
        service.core().snapshot().node_by_name("GHOST").is_none(),
        "the unpublished batch did not survive"
    );

    // The recovered graph is byte-identical to the pre-crash one, so the
    // session transcript is too.
    let snapshot_after = encode_snapshot(service.core().snapshot());
    assert_eq!(snapshot_after, snapshot_before, "byte-stable recovery");
    let replayed = service.serve_one(MOTIVATING_QUERY).expect("session halts");
    assert_eq!(replayed.halt_reason, outcome.halt_reason);
    assert_eq!(replayed.transcript, outcome.transcript);
    println!(
        "post-crash session: {:?} after {} interactions — transcript identical",
        replayed.halt_reason, replayed.stats.interactions
    );

    let _ = std::fs::remove_dir_all(&dir);
}
