//! Quickstart: load the paper's Figure 1 graph, evaluate the motivating
//! query, and learn it back from a handful of examples.
//!
//! Run with `cargo run --example quickstart`.

use gps_core::Gps;
use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
use gps_learner::Label;

fn main() {
    // 1. The graph database of Figure 1: neighborhoods, cinemas, restaurants,
    //    tram and bus lines.
    let (graph, ids) = figure1_graph();
    println!("Figure 1 graph: {} nodes, {} edges, alphabet {{tram, bus, cinema, restaurant}}",
        graph.node_count(), graph.edge_count());

    let gps = Gps::new(graph);

    // 2. Evaluate the motivating query: from which neighborhoods can one
    //    reach a cinema using public transportation?
    println!("\nq = {MOTIVATING_QUERY}");
    println!("q(G) = {}", gps.evaluate_rendered(MOTIVATING_QUERY).unwrap());

    // 3. The same question, asked the GPS way: label a few nodes and let the
    //    system construct the query (static-labeling scenario).
    let outcome = gps.static_labeling(&[
        (ids.n2, Label::Positive),
        (ids.n6, Label::Positive),
        (ids.n5, Label::Negative),
    ]);
    match outcome {
        gps_core::StaticLabelingOutcome::Learned(learned) => {
            let display = gps_automata::printer::print(&learned.regex, gps.graph().labels());
            println!("\nFrom examples +N2 +N6 -N5 the system proposes: {display}");
            let names: Vec<&str> = learned
                .answer
                .nodes()
                .into_iter()
                .map(|n| gps.graph().node_name(n))
                .collect();
            println!("which selects {{{}}}", names.join(", "));
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    // 4. The full interactive scenario with a simulated user who has the
    //    motivating query in mind.
    let report = gps.interactive_with_validation(MOTIVATING_QUERY, 0).unwrap();
    println!(
        "\nInteractive session: {} interactions, {} zooms, goal reached: {}",
        report.interactions, report.zooms, report.goal_reached
    );
    println!("learned: {}", report.learned.unwrap_or_default());
}
