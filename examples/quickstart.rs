//! Quickstart: load the paper's Figure 1 graph, evaluate the motivating
//! query, and learn it back from a handful of examples.
//!
//! Run with `cargo run --example quickstart`.

use gps_core::prelude::*;
use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};

fn main() {
    // 1. The graph database of Figure 1: neighborhoods, cinemas, restaurants,
    //    tram and bus lines.
    let (graph, ids) = figure1_graph();
    println!(
        "Figure 1 graph: {} nodes, {} edges, alphabet {{tram, bus, cinema, restaurant}}",
        graph.node_count(),
        graph.edge_count()
    );

    // Build the engine through the builder: pick the strategy and the zoom
    // options, then snapshot to the immutable CSR backend — queries,
    // rendering and interactive sessions all run on the snapshot.
    let gps = Engine::builder(graph)
        .strategy(StrategyChoice::InformativePaths { bound: 3 })
        .initial_radius(2)
        .build_csr();

    // 2. Evaluate the motivating query: from which neighborhoods can one
    //    reach a cinema using public transportation?
    println!("\nq = {MOTIVATING_QUERY}");
    println!(
        "q(G) = {}",
        gps.evaluate_rendered(MOTIVATING_QUERY).unwrap()
    );

    // 3. The same question, asked the GPS way: label a few nodes and let the
    //    system construct the query (static-labeling scenario).
    let outcome = gps.static_labeling(&[
        (ids.n2, Label::Positive),
        (ids.n6, Label::Positive),
        (ids.n5, Label::Negative),
    ]);
    match outcome {
        gps_core::StaticLabelingOutcome::Learned(learned) => {
            let display = gps_automata::printer::print(&learned.regex, gps.graph().labels());
            println!("\nFrom examples +N2 +N6 -N5 the system proposes: {display}");
            let names: Vec<&str> = learned
                .answer
                .nodes()
                .into_iter()
                .map(|n| gps.graph().node_name(n))
                .collect();
            println!("which selects {{{}}}", names.join(", "));
        }
        other => println!("unexpected outcome: {other:?}"),
    }

    // 4. The full interactive scenario with a simulated user who has the
    //    motivating query in mind — running entirely on the CSR backend.
    let report = gps
        .interactive_with_validation(MOTIVATING_QUERY, 0)
        .unwrap();
    println!(
        "\nInteractive session (CSR backend): {} interactions, {} zooms, goal reached: {}",
        report.interactions, report.zooms, report.goal_reached
    );
    println!("learned: {}", report.learned.unwrap_or_default());

    // 5. Typed errors across every layer: one enum, one match.
    match gps.evaluate("(bus") {
        Err(GpsError::Parse(e)) => println!("\nparse errors are typed: {e}"),
        other => println!("unexpected: {other:?}"),
    }
}
