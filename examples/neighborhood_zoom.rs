//! Reproduces Figure 3 of the paper as text: the neighborhood of N2 at
//! distance 2 (a), the zoom-out to distance 3 with the newly revealed nodes
//! highlighted (b), and the prefix tree of N2's paths of length at most 3
//! with the system's candidate path highlighted (c).
//!
//! Run with `cargo run --example neighborhood_zoom`.

use gps_core::Gps;
use gps_datasets::figure1::figure1_graph;

fn main() {
    let (graph, ids) = figure1_graph();
    let gps = Gps::new(graph);

    println!("=== Figure 3(a): neighborhood of N2, distance <= 2 ===");
    println!("{}", gps.render_neighborhood(ids.n2, 2));

    println!("=== Figure 3(b): zoom out to distance <= 3 (new nodes marked) ===");
    println!("{}", gps.render_zoom(ids.n2, 2));

    println!("=== Figure 3(c): prefix tree of N2's paths of length <= 3 ===");
    let g = gps.graph();
    let bus = g.label_id("bus").unwrap();
    let cinema = g.label_id("cinema").unwrap();
    // The system highlights bus·bus·cinema: a path of length 3, matching the
    // radius the user zoomed out to.
    println!("{}", gps.render_prefix_tree(ids.n2, 3, &[bus, bus, cinema]));
}
