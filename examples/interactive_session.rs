//! A complete interactive session on a generated transport network: the
//! system proposes informative nodes, a simulated user (who has the query
//! "(tram+bus)*.cinema" in mind) labels them, validates witness paths, and
//! the learned query converges to the goal.
//!
//! Run with `cargo run --example interactive_session`.

use gps_core::Transcript;
use gps_datasets::transport::{generate, TransportConfig};
use gps_interactive::session::{Session, SessionConfig};
use gps_interactive::strategy::{
    DegreeStrategy, InformativePathsStrategy, RandomStrategy, Strategy,
};
use gps_interactive::user::SimulatedUser;
use gps_rpq::PathQuery;

fn main() {
    // A small Transpole-like network: a 4x5 grid of neighborhoods connected
    // by tram and bus lines, decorated with cinemas and restaurants.
    let network = generate(&TransportConfig::default());
    let graph = &network.graph;
    println!(
        "transport network: {} nodes ({} neighborhoods), {} edges",
        graph.node_count(),
        network.neighborhoods.len(),
        graph.edge_count()
    );

    let goal = PathQuery::parse("(tram+bus)*.cinema", graph.labels()).unwrap();
    println!("hidden goal query: {}", goal.display(graph.labels()));
    println!(
        "goal answer: {} of {} nodes\n",
        goal.evaluate(graph).len(),
        graph.node_count()
    );

    // Run the full session with the paper's informative-paths strategy and
    // print the transcript.
    let mut user = SimulatedUser::new(goal.clone(), graph);
    let mut strategy = InformativePathsStrategy::default();
    let mut session = Session::new(graph, SessionConfig::default());
    let outcome = session.run(&mut strategy, &mut user);

    let transcript = Transcript::from_outcome(graph, &outcome);
    println!("=== transcript (informative-paths strategy) ===");
    println!("{}", transcript.render());

    if let Some(learned) = &outcome.learned {
        let same = learned.answer.nodes() == goal.evaluate(graph).nodes();
        println!("learned query equals the goal on this graph: {same}\n");
    }

    // Compare the number of interactions across strategies — the paper's
    // claim is that proposing informative nodes minimizes user effort.
    println!("=== strategy comparison (interactions to halt) ===");
    let strategies: Vec<(&str, Box<dyn Strategy>)> = vec![
        (
            "informative-paths",
            Box::new(InformativePathsStrategy::default()),
        ),
        ("degree", Box::new(DegreeStrategy)),
        ("random", Box::new(RandomStrategy::seeded(1))),
    ];
    for (name, mut strategy) in strategies {
        let mut user = SimulatedUser::new(goal.clone(), graph);
        let mut session = Session::new(graph, SessionConfig::default());
        let outcome = session.run(strategy.as_mut(), &mut user);
        println!(
            "{name:>18}: {:>3} interactions, {:>2} zooms, halted with {:?}",
            outcome.stats.interactions, outcome.stats.zooms, outcome.halt_reason
        );
    }
}
