//! Serving many users over one shared engine core.
//!
//! Builds one `EngineCore` (snapshot + bounded cache + label index) on a
//! mid-size transport network and drives a batch of concurrent interactive
//! specification sessions through `GpsService`, then steps one more session
//! manually through the `SessionManager` open/step/close API.
//!
//! Run with `cargo run --example many_users`.

use gps_core::service::GpsService;
use gps_core::{Engine, EvalMode, SessionStatus};
use gps_datasets::transport::{self, TransportConfig};

fn main() {
    let net = transport::generate(&TransportConfig::with_neighborhoods(120, 7));
    println!(
        "transport network: {} nodes, {} edges",
        net.graph.node_count(),
        net.graph.edge_count()
    );

    // One immutable core for the whole fleet: every session shares the CSR
    // snapshot, the frontier engine's label index and the bounded cache.
    let core = Engine::builder(net.graph)
        .eval_mode(EvalMode::Frontier)
        .cache_capacity(1024) // LRU cap on cached query answers
        .words_capacity(8) // LRU cap on per-bound word snapshots
        .max_interactions(30)
        .build_core();
    println!(
        "shared label index: {} KiB for all sessions\n",
        core.index_memory_bytes() / 1024
    );

    // A mixed bag of user goals — popular queries repeat, as in real traffic.
    let goals: Vec<String> = [
        "(tram+bus)*.cinema",
        "restaurant",
        "bus*.cinema",
        "(tram+bus)*.cinema",
        "tram.bus*.restaurant",
        "(tram+bus)*.cinema",
        "bus*.cinema",
        "restaurant",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();

    let service = GpsService::new(core);
    let outcomes = service
        .serve(&goals, 4)
        .expect("all goals parse and all sessions halt");
    for (goal, outcome) in goals.iter().zip(&outcomes) {
        println!(
            "goal {goal:<22} -> {:?} after {} interactions",
            outcome.halt_reason, outcome.stats.interactions
        );
    }
    let stats = service.stats();
    println!(
        "\naggregate: {} sessions, {} interactions, cache {:?} (hits, misses), {} word-snapshot evictions",
        stats.sessions_closed,
        stats.interactions,
        service.core().eval_cache().stats(),
        service.core().eval_cache().word_evictions(),
    );

    // The same table also serves sessions one step at a time.
    let manager = service.manager();
    let id = manager.open("(tram+bus)*.cinema").expect("goal parses");
    let mut steps = 0;
    let reason = loop {
        steps += 1;
        match manager.step(id).expect("session exists") {
            SessionStatus::Running { .. } => continue,
            SessionStatus::Halted(reason) => break reason,
        }
    };
    let outcome = manager.close(id).expect("session exists");
    println!(
        "\nstepped session: {steps} steps to {reason:?}, learned {}",
        outcome.learned.is_some()
    );
}
