//! The three demonstration scenarios of the paper, run back to back on the
//! Figure 1 graph:
//!
//! 1. static labeling (including an inconsistent labeling),
//! 2. interactive labeling without path validation (which learns *a*
//!    consistent query, e.g. `bus`, but not necessarily the goal),
//! 3. interactive labeling with path validation (which recovers the goal).
//!
//! Run with `cargo run --example demo_scenarios`.

use gps_core::{Gps, StaticLabelingOutcome};
use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
use gps_learner::Label;

fn main() {
    let (graph, ids) = figure1_graph();
    let gps = Gps::new(graph);
    let labels = gps.graph().labels();

    // ------------------------------------------------------------------
    println!("=== Scenario 1: static labeling ===");
    println!("The attendee labels nodes directly on the whole graph.\n");

    println!("labels: +N2 +N6 -N5");
    match gps.static_labeling(&[
        (ids.n2, Label::Positive),
        (ids.n6, Label::Positive),
        (ids.n5, Label::Negative),
    ]) {
        StaticLabelingOutcome::Learned(learned) => println!(
            "  consistent query proposed: {}\n  answer: {}\n",
            gps_automata::printer::print(&learned.regex, labels),
            render(&gps, &learned.answer.nodes())
        ),
        other => println!("  unexpected: {other:?}\n"),
    }

    println!("labels: +C1 -N4   (inconsistent: C1 has no outgoing path)");
    match gps.static_labeling(&[(ids.c1, Label::Positive), (ids.n4, Label::Negative)]) {
        StaticLabelingOutcome::Inconsistent {
            conflicting_positive,
        } => println!(
            "  the system points out the labeling is inconsistent (positive {} cannot be separated)\n",
            gps.graph().node_name(conflicting_positive)
        ),
        other => println!("  unexpected: {other:?}\n"),
    }

    // ------------------------------------------------------------------
    println!("=== Scenario 2: interactive labeling WITHOUT path validation ===");
    let report = gps
        .interactive_without_validation(MOTIVATING_QUERY, 0)
        .unwrap();
    println!(
        "goal: {}\nlearned: {}\nconsistent with labels: {}\nequals the goal answer: {}\ninteractions: {}\n",
        report.goal,
        report.learned.clone().unwrap_or_else(|| "-".into()),
        report.consistent_with_labels,
        report.goal_reached,
        report.interactions
    );

    // ------------------------------------------------------------------
    println!("=== Scenario 3: interactive labeling WITH path validation ===");
    let report = gps
        .interactive_with_validation(MOTIVATING_QUERY, 0)
        .unwrap();
    println!(
        "goal: {}\nlearned: {}\nconsistent with labels: {}\nequals the goal answer: {}\ninteractions: {} (+{} zooms)\n",
        report.goal,
        report.learned.clone().unwrap_or_else(|| "-".into()),
        report.consistent_with_labels,
        report.goal_reached,
        report.interactions,
        report.zooms
    );
    println!("transcript:\n{}", report.transcript.render());
}

fn render(gps: &Gps, nodes: &[gps_graph::NodeId]) -> String {
    let names: Vec<&str> = nodes.iter().map(|&n| gps.graph().node_name(n)).collect();
    format!("{{{}}}", names.join(", "))
}
