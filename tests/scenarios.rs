//! Integration tests for the three demonstration scenarios (Section 3 of the
//! paper): static labeling, interactive labeling without path validation, and
//! interactive labeling with path validation.

use gps_core::{Gps, StaticLabelingOutcome};
use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
use gps_datasets::transport::{generate, TransportConfig};
use gps_learner::Label;
use gps_rpq::PathQuery;

#[test]
fn s1_static_labeling_with_consistent_labels_learns_a_query() {
    let (graph, ids) = figure1_graph();
    let gps = Gps::new(graph);
    let outcome = gps.static_labeling(&[
        (ids.n2, Label::Positive),
        (ids.n6, Label::Positive),
        (ids.n5, Label::Negative),
    ]);
    match outcome {
        StaticLabelingOutcome::Learned(learned) => {
            // The learned query is consistent with the labels (the paper only
            // promises consistency in this scenario, not goal equality).
            assert!(learned.answer.contains(ids.n2));
            assert!(learned.answer.contains(ids.n6));
            assert!(!learned.answer.contains(ids.n5));
        }
        other => panic!("expected Learned, got {other:?}"),
    }
}

#[test]
fn s1_static_labeling_reports_inconsistent_labelings() {
    let (graph, ids) = figure1_graph();
    let gps = Gps::new(graph);
    // R1 has no outgoing edge: positive R1 plus any negative cannot be
    // satisfied by a query with non-empty witnesses.
    let outcome = gps.static_labeling(&[(ids.r1, Label::Positive), (ids.n2, Label::Negative)]);
    assert!(matches!(
        outcome,
        StaticLabelingOutcome::Inconsistent {
            conflicting_positive
        } if conflicting_positive == ids.r1
    ));
    // Labeling only negatives is reported as "nothing to learn from".
    let outcome = gps.static_labeling(&[(ids.n5, Label::Negative)]);
    assert!(matches!(outcome, StaticLabelingOutcome::NoPositives));
}

#[test]
fn s2_without_validation_is_consistent_but_not_necessarily_the_goal() {
    let (graph, _) = figure1_graph();
    let gps = Gps::new(graph);
    let report = gps
        .interactive_without_validation(MOTIVATING_QUERY, 0)
        .unwrap();
    // Always consistent with the labels the user provided...
    assert!(report.consistent_with_labels);
    assert!(report.learned.is_some());
    // ...and the paper's point: scenario 2 gives no guarantee of reaching the
    // goal query itself (`bus` is consistent with +N2 +N6 -N5 but wrong).
    // Either outcome is legal; record which one we observed for the report.
    println!(
        "scenario 2 learned {:?}, goal reached: {}",
        report.learned, report.goal_reached
    );
}

#[test]
fn s3_with_validation_recovers_the_goal_on_figure1() {
    let (graph, _) = figure1_graph();
    let gps = Gps::new(graph);
    let report = gps
        .interactive_with_validation(MOTIVATING_QUERY, 0)
        .unwrap();
    assert!(report.goal_reached);
    assert!(report.consistent_with_labels);
    assert!(report.transcript.entries.len() == report.interactions);
}

#[test]
fn s3_with_validation_recovers_goals_on_generated_transport_networks() {
    // The claim must hold beyond the toy example: sweep a few generated
    // networks and goal queries.
    for seed in [1u64, 2, 3] {
        let net = generate(&TransportConfig::with_neighborhoods(25, seed));
        let gps = Gps::new(net.graph.clone());
        for goal_syntax in ["cinema", "(tram+bus)*.cinema"] {
            let goal = PathQuery::parse(goal_syntax, net.graph.labels()).unwrap();
            if goal.evaluate(&net.graph).is_empty() {
                continue;
            }
            let report = gps.interactive_with_validation(goal_syntax, seed).unwrap();
            assert!(
                report.goal_reached,
                "seed {seed}, goal {goal_syntax}: learned {:?} in {} interactions",
                report.learned, report.interactions
            );
        }
    }
}

#[test]
fn s2_and_s3_use_comparable_numbers_of_interactions() {
    let (graph, _) = figure1_graph();
    let gps = Gps::new(graph);
    let without = gps
        .interactive_without_validation(MOTIVATING_QUERY, 0)
        .unwrap();
    let with = gps
        .interactive_with_validation(MOTIVATING_QUERY, 0)
        .unwrap();
    // Path validation costs the user one extra click per positive node but
    // not extra *labeling* interactions.
    assert!(with.interactions <= without.interactions + 2);
    assert!(without.interactions <= graph_size());
}

fn graph_size() -> usize {
    figure1_graph().0.node_count()
}
