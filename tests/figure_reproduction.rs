//! Integration tests reproducing the paper's figures end to end:
//! Figure 1 (the motivating query and its answer), Figure 3(a)/(b) (the
//! neighborhood of N2 at distance 2 and its zoom-out to distance 3), and
//! Figure 3(c) (the prefix tree of N2's candidate paths with the suggested
//! path highlighted).

use gps_core::Gps;
use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
use gps_graph::Neighborhood;
use gps_interactive::validation;
use gps_rpq::{NegativeCoverage, PathQuery};

#[test]
fn figure1_motivating_query_answer() {
    let (graph, ids) = figure1_graph();
    let gps = Gps::new(graph);
    let answer = gps.evaluate(MOTIVATING_QUERY).unwrap();
    assert_eq!(answer.nodes(), vec![ids.n1, ids.n2, ids.n4, ids.n6]);
    assert_eq!(
        gps.evaluate_rendered(MOTIVATING_QUERY).unwrap(),
        "{N1, N2, N4, N6}"
    );
}

#[test]
fn figure1_witness_paths_match_the_papers_narrative() {
    let (graph, ids) = figure1_graph();
    let query = PathQuery::parse(MOTIVATING_QUERY, graph.labels()).unwrap();
    // The paper lists these paths as the entailment evidence.
    assert_eq!(
        query.witness(&graph, ids.n1).unwrap().render_word(&graph),
        "tram·cinema"
    );
    assert_eq!(
        query.witness(&graph, ids.n2).unwrap().render_word(&graph),
        "bus·tram·cinema"
    );
    assert_eq!(
        query.witness(&graph, ids.n4).unwrap().render_word(&graph),
        "cinema"
    );
    assert_eq!(
        query.witness(&graph, ids.n6).unwrap().render_word(&graph),
        "cinema"
    );
    // N5 (the paper's negative example) has no witness at all.
    assert!(query.witness(&graph, ids.n5).is_none());
}

#[test]
fn figure3a_neighborhood_of_n2_at_distance_2_hides_the_cinema() {
    let (graph, ids) = figure1_graph();
    let hood = Neighborhood::extract(&graph, ids.n2, 2);
    assert_eq!(hood.center(), ids.n2);
    assert!(hood.contains(ids.n1));
    assert!(hood.contains(ids.n3));
    assert!(hood.contains(ids.r1));
    assert!(!hood.contains(ids.c1), "no cinema at distance 2");
    assert!(!hood.contains(ids.c2));
    // Frontier nodes carry the "…" continuation marker.
    assert!(!hood.continuations().is_empty());
}

#[test]
fn figure3b_zoom_to_distance_3_reveals_the_cinema_highlighted() {
    let (graph, ids) = figure1_graph();
    let hood2 = Neighborhood::extract(&graph, ids.n2, 2);
    let (hood3, delta) = hood2.zoom_out(&graph);
    assert_eq!(hood3.radius(), 3);
    assert!(hood3.contains(ids.c1));
    assert!(delta.added_nodes.contains(&ids.c1));
    // The textual rendering marks the new nodes like the figure's blue
    // highlighting.
    let gps = Gps::new(figure1_graph().0);
    let rendered = gps.render_zoom(ids.n2, 2);
    assert!(rendered.contains("C1 *new*"));
}

#[test]
fn figure3c_prefix_tree_highlights_a_length3_candidate() {
    let (graph, ids) = figure1_graph();
    let coverage = NegativeCoverage::new(3);
    let prompt = validation::build_prompt(&graph, ids.n2, 3, &coverage).unwrap();
    // The system suggests a path of length 3 — the radius the user zoomed to.
    assert_eq!(prompt.suggested.len(), 3);
    let bus = graph.label_id("bus").unwrap();
    let cinema = graph.label_id("cinema").unwrap();
    let tram = graph.label_id("tram").unwrap();
    assert!(prompt.is_candidate(&[bus, bus, cinema]));
    assert!(prompt.is_candidate(&[bus, tram, cinema]));
    // Rendering shows the candidate marker.
    let gps = Gps::new(figure1_graph().0);
    let rendered = gps.render_prefix_tree(ids.n2, 3, &prompt.suggested);
    assert!(rendered.contains("◀ candidate"));
}

#[test]
fn figure2_loop_reaches_the_goal_query() {
    let (graph, _) = figure1_graph();
    let gps = Gps::new(graph);
    let report = gps
        .interactive_with_validation(MOTIVATING_QUERY, 0)
        .unwrap();
    assert!(report.goal_reached);
    assert!(report.consistent_with_labels);
    // The paper's promise: a small number of interactions (never more than
    // the number of nodes, and in practice much fewer than labeling all).
    assert!(report.interactions <= 6, "took {}", report.interactions);
}
