//! Telemetry conformance suite: metrics are *purely observational*.
//!
//! The contract the tentpole rests on: wiring a [`MetricsRegistry`] through
//! the stack must not change a single observable byte — transcripts, learned
//! queries, example sets and statistics are identical with metrics enabled
//! and disabled, across every [`EvalMode`] and both the bare-session and the
//! managed-service paths.  On top of that, after a mixed
//! serve + update + recover workload the service's exports must be complete
//! (eval latency, cache hit/miss, publish latency, WAL fsyncs, session
//! counters) and grammatically valid: `metrics_text()` passes the
//! Prometheus text validator and `metrics_json()` passes the JSON validator.

use gps_core::prelude::*;
use gps_core::service::GpsService;
use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
use gps_interactive::session::InteractionRecord;
use gps_telemetry::{validate_json, validate_prometheus_text};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const MODES: [EvalMode; 3] = [EvalMode::Naive, EvalMode::Frontier, EvalMode::Parallel];

static DIRS: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let id = DIRS.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gps-telemetry-{tag}-{}-{id}", std::process::id()))
}

fn goals() -> Vec<String> {
    vec![
        MOTIVATING_QUERY.to_string(),
        "cinema".to_string(),
        MOTIVATING_QUERY.to_string(),
        "restaurant".to_string(),
    ]
}

/// Everything observable about a finished session, in comparable form.
#[derive(Debug, PartialEq)]
struct SessionFingerprint {
    transcript: Vec<InteractionRecord>,
    learned_nodes: Option<Vec<NodeId>>,
    halt: HaltReason,
    interactions: usize,
    zooms: usize,
    path_validations: usize,
    pruned_after_interaction: Vec<usize>,
}

fn fingerprint(outcome: &SessionOutcome) -> SessionFingerprint {
    SessionFingerprint {
        transcript: outcome.transcript.clone(),
        learned_nodes: outcome.learned.as_ref().map(|l| l.answer.nodes()),
        halt: outcome.halt_reason,
        interactions: outcome.stats.interactions,
        zooms: outcome.stats.zooms,
        path_validations: outcome.stats.path_validations,
        pruned_after_interaction: outcome.stats.pruned_after_interaction.clone(),
    }
}

fn service(mode: EvalMode, registry: Option<Arc<MetricsRegistry>>) -> GpsService {
    let (graph, _) = figure1_graph();
    let mut builder = Engine::builder(graph).eval_mode(mode);
    if let Some(registry) = registry {
        builder = builder.metrics(registry);
    }
    GpsService::new(builder.build_core())
}

#[test]
fn transcripts_are_byte_identical_with_metrics_enabled() {
    for mode in MODES {
        let disabled = service(mode, None);
        let registry = Arc::new(MetricsRegistry::enabled());
        let enabled = service(mode, Some(Arc::clone(&registry)));

        let base: Vec<SessionFingerprint> = disabled
            .serve(&goals(), 2)
            .unwrap()
            .iter()
            .map(fingerprint)
            .collect();
        let instrumented: Vec<SessionFingerprint> = enabled
            .serve(&goals(), 2)
            .unwrap()
            .iter()
            .map(fingerprint)
            .collect();
        assert_eq!(base, instrumented, "{mode:?}: metrics changed a session");

        // The instrumented run actually recorded: sessions and interactions.
        let snapshot = enabled.metrics();
        assert_eq!(
            snapshot.counter("gps_service_sessions_opened_total"),
            Some(goals().len() as u64),
            "{mode:?}"
        );
        let total: usize = instrumented.iter().map(|f| f.interactions).sum();
        assert_eq!(
            snapshot.counter("gps_interactive_interactions_total"),
            Some(total as u64),
            "{mode:?}"
        );
    }
}

#[test]
fn bare_sessions_are_identical_and_record_per_session_histograms() {
    let (graph, _) = figure1_graph();
    let plain = Engine::builder(graph.clone()).build();
    let registry = Arc::new(MetricsRegistry::enabled());
    let instrumented = Engine::builder(graph)
        .metrics(Arc::clone(&registry))
        .build();

    let goal = plain.parse_query(MOTIVATING_QUERY).unwrap();
    let mut user = SimulatedUser::new(goal.clone(), plain.backend());
    let base = fingerprint(&plain.specify(&mut user));
    let mut user = SimulatedUser::new(goal, instrumented.backend());
    let outcome = instrumented.specify(&mut user);
    assert_eq!(base, fingerprint(&outcome));

    // `Session::run` records the dialogue length on completion.
    let hist = registry.snapshot();
    let per_session = hist
        .histogram("gps_interactive_interactions_per_session")
        .expect("recorded by the engine-driven session");
    assert_eq!(per_session.count, 1);
    assert_eq!(per_session.sum, outcome.stats.interactions as u64);
}

#[test]
fn legacy_cache_getters_mirror_the_registry_counters() {
    let registry = Arc::new(MetricsRegistry::enabled());
    let svc = service(EvalMode::Frontier, Some(Arc::clone(&registry)));
    svc.serve(&goals(), 2).unwrap();
    let (hits, misses) = svc.core().eval_cache().stats();
    assert!(hits > 0, "repeated goals must hit the shared cache");
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counter("gps_rpq_cache_hits_total"),
        Some(hits),
        "deprecated getter and registry disagree on hits"
    );
    assert_eq!(snapshot.counter("gps_rpq_cache_misses_total"), Some(misses));
}

#[test]
fn mixed_workload_exports_are_complete_and_valid() {
    let dir = tmp_dir("mixed");
    let registry = Arc::new(MetricsRegistry::enabled());
    let builder = || {
        let (graph, _) = figure1_graph();
        Engine::builder(graph)
            .eval_mode(EvalMode::Frontier)
            .checkpoint_every_n_publishes(2)
    };

    // Serve + update (two publishes trigger a checkpoint) + one
    // removal-bearing publish that drives the Tier-3 delete-reseed, then
    // drop.
    {
        let (svc, report) =
            GpsService::open_durable(&dir, builder().metrics(Arc::clone(&registry))).unwrap();
        assert!(report.created);
        svc.serve(&goals(), 2).unwrap();
        svc.update(
            GraphUpdate::new()
                .add_node("C9")
                .add_edge("N5", "cinema", "C9"),
        )
        .unwrap();
        svc.update(GraphUpdate::new().add_edge("C9", "bus", "N1"))
            .unwrap();
        let report = svc
            .update(
                GraphUpdate::new()
                    .remove_edge("C9", "bus", "N1")
                    .add_edge("C9", "tram", "N1"),
            )
            .unwrap();
        assert!(
            report.delete_reseeded_answers > 0,
            "the removal publish must exercise the delete-aware resume"
        );
    }

    // Recover into the same registry and serve again.
    let (svc, report) =
        GpsService::open_durable(&dir, builder().metrics(Arc::clone(&registry))).unwrap();
    assert!(!report.created);
    svc.serve(&goals(), 2).unwrap();

    let text = svc.metrics_text();
    validate_prometheus_text(&text).expect("metrics_text must be valid Prometheus exposition");
    for required in [
        "gps_exec_eval_latency_ns",
        "gps_exec_index_build_ns",
        "gps_exec_index_shards",
        "gps_rpq_cache_hits_total",
        "gps_rpq_cache_misses_total",
        "gps_rpq_cache_delete_reseeded_total",
        "gps_rpq_cache_fallback_saturation_total",
        "gps_rpq_cache_fallback_no_seed_total",
        "gps_rpq_cache_fallback_evicted_total",
        "gps_rpq_delete_reseed_latency_ns",
        "gps_exec_support_overdeleted_total",
        "gps_core_publish_latency_ns",
        "gps_core_recovery_replay_ns",
        "gps_store_fsyncs_total",
        "gps_store_wal_bytes_total",
        "gps_service_sessions_opened_total",
        "gps_service_sessions_closed_total",
        "gps_interactive_interactions_total",
    ] {
        assert!(text.contains(required), "missing {required} in:\n{text}");
    }

    let json = svc.metrics_json();
    validate_json(&json).expect("metrics_json must be valid JSON");

    // The audit trail covers the whole lifecycle.
    let events = svc.metrics().events;
    let kinds: std::collections::BTreeSet<&str> =
        events.iter().map(|event| event.kind.as_str()).collect();
    for required in [
        "session_open",
        "session_close",
        "stage",
        "publish",
        "checkpoint",
        "recovery",
    ] {
        assert!(kinds.contains(required), "missing event {required:?}");
    }

    // Store-level series reflect real durable work.
    let snapshot = svc.metrics();
    assert!(snapshot.counter("gps_store_fsyncs_total").unwrap() >= 2);
    assert!(snapshot.counter("gps_store_wal_bytes_total").unwrap() > 0);
    assert!(snapshot.counter("gps_store_checkpoints_total").unwrap() >= 1);
    assert_eq!(snapshot.counter("gps_core_publishes_total"), Some(3));
    assert_eq!(
        snapshot.counter("gps_core_checkpoint_errors_total"),
        Some(0)
    );
    let publish_latency = snapshot.histogram("gps_core_publish_latency_ns").unwrap();
    assert_eq!(publish_latency.count, 3);
    // The removal publish recorded the Tier-3 split: delete-reseeds happened,
    // and the legacy fallback series equals its reason trio's sum.
    assert!(
        snapshot
            .counter("gps_rpq_cache_delete_reseeded_total")
            .unwrap()
            > 0
    );
    let reasons = snapshot
        .counter("gps_rpq_cache_fallback_saturation_total")
        .unwrap()
        + snapshot
            .counter("gps_rpq_cache_fallback_no_seed_total")
            .unwrap()
        + snapshot
            .counter("gps_rpq_cache_fallback_evicted_total")
            .unwrap();
    assert_eq!(
        snapshot.counter("gps_rpq_cache_fallback_total").unwrap(),
        reasons,
        "the fallback series must stay the sum of its reasons"
    );

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn disabled_registry_exports_are_empty_but_valid() {
    let svc = service(EvalMode::Frontier, None);
    svc.serve(&goals()[..1], 1).unwrap();
    assert_eq!(svc.metrics_text(), "");
    validate_json(&svc.metrics_json()).expect("the empty document is still valid JSON");
    assert!(svc.metrics().events.is_empty());
    assert!(!svc.metrics_registry().is_enabled());
}

#[test]
fn updates_and_retirement_keep_gauges_accurate() {
    let registry = Arc::new(MetricsRegistry::enabled());
    let svc = service(EvalMode::Frontier, Some(Arc::clone(&registry)));
    let first = svc.manager().open(MOTIVATING_QUERY).unwrap();
    svc.manager().step(first).unwrap();
    svc.update(GraphUpdate::new().add_node("Z1")).unwrap();

    let snapshot = svc.metrics();
    assert_eq!(snapshot.gauge("gps_core_current_epoch"), Some(1));
    assert_eq!(
        snapshot.gauge("gps_core_live_epochs"),
        Some(2),
        "epoch 0 still pinned by the open session"
    );
    assert_eq!(snapshot.gauge("gps_service_active_sessions"), Some(1));

    svc.manager().close(first).unwrap();
    let snapshot = svc.metrics();
    assert_eq!(snapshot.gauge("gps_core_live_epochs"), Some(1));
    assert_eq!(snapshot.gauge("gps_service_active_sessions"), Some(0));
    assert_eq!(snapshot.counter("gps_core_retired_epochs_total"), Some(1));
    let events = svc.metrics().events;
    let kinds: Vec<&str> = events.iter().map(|event| event.kind.as_str()).collect();
    assert!(kinds.contains(&"retire"));
    assert!(kinds.contains(&"session_halt") || kinds.contains(&"session_close"));
}
