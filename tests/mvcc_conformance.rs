//! MVCC conformance suite — the contract of the epoch-versioned live store:
//!
//! 1. **Compaction is exact.**  Any random insert/delete sequence applied
//!    through a [`DeltaGraph`] and [`compact`](DeltaGraph::compact)ed yields
//!    a snapshot byte-identical to a from-scratch [`Graph`] → [`CsrGraph`]
//!    build of the surviving edges (names, labels, adjacency order, edge
//!    ids, both directions) — including across chained compactions.
//! 2. **Pinned sessions are byte-stable.**  A session opened before a
//!    publish replays exactly the transcript it would have produced had the
//!    publish never happened, across every [`EvalMode`], while the publish
//!    lands mid-run.
//! 3. **New sessions observe the update.**  Sessions (and plain reads)
//!    opened after a publish run on the new epoch and see the inserted
//!    edges, across every [`EvalMode`].

use gps_core::prelude::*;
use gps_core::service::GpsService;
use gps_core::versioned::{GraphUpdate, VersionedStore};
use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
use gps_graph::delta::UpdateOp;
use gps_graph::DeltaGraph;
use gps_interactive::session::InteractionRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const MODES: [EvalMode; 3] = [EvalMode::Naive, EvalMode::Frontier, EvalMode::Parallel];

// ------------------------------------------------------ 1. compaction exact

/// The shadow model: node names in insertion order, label names in interner
/// order, surviving edges (by name triple) in insertion order.
#[derive(Debug, Clone, Default)]
struct Shadow {
    nodes: Vec<String>,
    labels: Vec<String>,
    edges: Vec<(usize, usize, usize)>, // (node idx, label idx, node idx)
}

impl Shadow {
    fn from_graph(graph: &Graph) -> Self {
        Self {
            nodes: graph
                .nodes()
                .map(|n| graph.node_name(n).to_string())
                .collect(),
            labels: graph
                .labels()
                .iter()
                .map(|(_, name)| name.to_string())
                .collect(),
            edges: graph
                .edges()
                .map(|(_, e)| (e.source.index(), e.label.index(), e.target.index()))
                .collect(),
        }
    }

    /// Rebuilds the expected snapshot from scratch.
    fn build(&self) -> CsrGraph {
        let mut g = Graph::new();
        for label in &self.labels {
            g.label(label);
        }
        for name in &self.nodes {
            g.add_node(name.clone());
        }
        for &(source, label, target) in &self.edges {
            g.add_edge(
                NodeId::from(source),
                LabelId::from(label),
                NodeId::from(target),
            );
        }
        CsrGraph::from_graph(&g)
    }
}

fn assert_snapshots_identical(got: &CsrGraph, want: &CsrGraph, context: &str) {
    assert_eq!(got.node_count(), want.node_count(), "{context}: node count");
    assert_eq!(got.edge_count(), want.edge_count(), "{context}: edge count");
    assert_eq!(got.labels(), want.labels(), "{context}: interner");
    for node in want.nodes() {
        assert_eq!(
            got.node_name(node),
            want.node_name(node),
            "{context}: name of {node}"
        );
        assert_eq!(got.out(node), want.out(node), "{context}: out({node})");
        assert_eq!(got.inc(node), want.inc(node), "{context}: inc({node})");
        let got_out: Vec<(EdgeId, Edge)> = GraphBackend::out_edges(got, node).collect();
        let want_out: Vec<(EdgeId, Edge)> = GraphBackend::out_edges(want, node).collect();
        assert_eq!(got_out, want_out, "{context}: out edge ids of {node}");
        let got_in: Vec<(EdgeId, Edge)> = GraphBackend::in_edges(got, node).collect();
        let want_in: Vec<(EdgeId, Edge)> = GraphBackend::in_edges(want, node).collect();
        assert_eq!(got_in, want_in, "{context}: in edge ids of {node}");
    }
    for name in want.nodes().map(|n| want.node_name(n)) {
        assert_eq!(
            got.node_by_name(name),
            want.node_by_name(name),
            "{context}: lookup of {name}"
        );
    }
}

fn random_base(rng: &mut StdRng) -> Graph {
    let mut g = Graph::new();
    for label in ["x", "y", "z"] {
        g.label(label);
    }
    let n = rng.gen_range(1..=10usize);
    for i in 0..n {
        // Deliberately collide some names so first-wins lookup is exercised.
        g.add_node(format!("n{}", i % 7));
    }
    let m = rng.gen_range(0..=24usize);
    for _ in 0..m {
        let s = NodeId::from(rng.gen_range(0..n));
        let t = NodeId::from(rng.gen_range(0..n));
        let l = LabelId::from(rng.gen_range(0..3usize));
        g.add_edge(s, l, t);
    }
    g
}

/// Applies one random op to both the delta graph and the shadow model.
fn random_op(rng: &mut StdRng, delta: &mut DeltaGraph, shadow: &mut Shadow, fresh: &mut usize) {
    match rng.gen_range(0..10u32) {
        // Insert a node (20%).
        0..=1 => {
            let name = format!("f{}", *fresh);
            *fresh += 1;
            delta.add_node(name.clone());
            shadow.nodes.push(name);
        }
        // Insert an edge (40%), sometimes with a brand-new label.
        2..=5 => {
            let s = rng.gen_range(0..shadow.nodes.len());
            let t = rng.gen_range(0..shadow.nodes.len());
            let label_name = if rng.gen_range(0..8u32) == 0 {
                format!("l{}", rng.gen_range(0..2u32))
            } else {
                shadow.labels[rng.gen_range(0..shadow.labels.len())].clone()
            };
            let label = delta.label(&label_name);
            if label.index() == shadow.labels.len() {
                shadow.labels.push(label_name);
            }
            delta.add_edge(NodeId::from(s), label, NodeId::from(t));
            shadow.edges.push((s, label.index(), t));
        }
        // Delete an edge (40%): first surviving occurrence of the triple.
        _ => {
            if shadow.edges.is_empty() {
                return;
            }
            let (s, l, t) = shadow.edges[rng.gen_range(0..shadow.edges.len())];
            assert!(delta.remove_edge(NodeId::from(s), LabelId::from(l), NodeId::from(t)));
            let first = shadow
                .edges
                .iter()
                .position(|&e| e == (s, l, t))
                .expect("sampled from the live set");
            shadow.edges.remove(first);
        }
    }
}

#[test]
fn compacted_delta_graphs_equal_from_scratch_builds() {
    let mut rng = StdRng::seed_from_u64(0x5EED_CAFE);
    for trial in 0..40 {
        let base = random_base(&mut rng);
        let mut shadow = Shadow::from_graph(&base);
        let mut snapshot = Arc::new(CsrGraph::from_graph(&base));
        let mut fresh = 0usize;
        // Two rounds of (random ops → compact) chained, so epoch N+1 builds
        // on a compacted epoch N, not only on a fresh snapshot.
        for round in 0..2 {
            let mut delta = DeltaGraph::new(Arc::clone(&snapshot));
            for _ in 0..rng.gen_range(1..=12usize) {
                random_op(&mut rng, &mut delta, &mut shadow, &mut fresh);
            }
            let compacted = delta.compact();
            assert_snapshots_identical(
                &compacted,
                &shadow.build(),
                &format!("trial {trial}, round {round}"),
            );
            assert_eq!(compacted.epoch(), round + 1, "trial {trial}");
            snapshot = Arc::new(compacted);
        }
    }
}

// ------------------------------------------- 2. pinned sessions byte-stable

#[derive(Debug, PartialEq)]
struct SessionFingerprint {
    transcript: Vec<InteractionRecord>,
    learned: Option<(String, Vec<NodeId>)>,
    halt: HaltReason,
    examples: ExampleSet,
    pruned_after_interaction: Vec<usize>,
}

fn fingerprint(
    labels: &LabelInterner,
    outcome: &gps_interactive::session::SessionOutcome,
) -> SessionFingerprint {
    SessionFingerprint {
        transcript: outcome.transcript.clone(),
        learned: outcome.learned.as_ref().map(|l| {
            (
                gps_automata::printer::print(&l.regex, labels),
                l.answer.nodes(),
            )
        }),
        halt: outcome.halt_reason,
        examples: outcome.examples.clone(),
        pruned_after_interaction: outcome.stats.pruned_after_interaction.clone(),
    }
}

/// The update used by the session tests: grows the answer of the motivating
/// query (a new cinema reachable from N5) and deletes an unrelated edge.
fn figure1_update() -> GraphUpdate {
    GraphUpdate::new()
        .add_node("C9")
        .add_edge("N5", "cinema", "C9")
        .add_edge("N5", "bus", "N1")
        .remove_edge("N2", "restaurant", "R1")
}

fn service(mode: EvalMode) -> GpsService {
    let (graph, _) = figure1_graph();
    GpsService::new(Engine::builder(graph).eval_mode(mode).build_core())
}

#[test]
fn pinned_sessions_replay_identically_across_a_mid_run_publish() {
    for mode in MODES {
        for goal in [MOTIVATING_QUERY, "cinema", "bus.tram*.cinema"] {
            // Baseline: the same manager-driven session with no publish.
            let baseline_service = service(mode);
            let labels = baseline_service.core().snapshot().labels().clone();
            let baseline = {
                let manager = baseline_service.manager();
                let id = manager.open(goal).unwrap();
                manager.run_to_completion(id).unwrap();
                fingerprint(&labels, &manager.close(id).unwrap())
            };

            // Live: identical session, but a publish lands after step 2.
            let live_service = service(mode);
            let manager = live_service.manager();
            let id = manager.open(goal).unwrap();
            assert_eq!(manager.session_epoch(id).unwrap(), 0);
            let mut halted = false;
            for _ in 0..2 {
                if let SessionStatus::Halted(_) = manager.step(id).unwrap() {
                    halted = true;
                    break;
                }
            }
            let report = live_service.update(figure1_update()).unwrap();
            assert_eq!(report.epoch, 1, "{mode:?}");
            if !halted {
                assert_eq!(
                    live_service.stats().live_epochs,
                    2,
                    "{mode:?}: the pinned birth epoch stays live"
                );
            }
            manager.run_to_completion(id).unwrap();
            assert_eq!(
                manager.session_epoch(id).unwrap(),
                0,
                "{mode:?}: the session never migrates epochs"
            );
            let live = fingerprint(&labels, &manager.close(id).unwrap());
            assert_eq!(
                live, baseline,
                "{mode:?}/{goal}: a mid-run publish must not perturb a pinned session"
            );
            assert_eq!(
                live_service.stats().live_epochs,
                1,
                "{mode:?}: closing the last pinned session retires epoch 0"
            );
        }
    }
}

#[test]
fn pinned_sessions_survive_a_storm_of_publishes() {
    // Same property under repeated mid-run publishes (insertions and
    // deletions oscillating), interleaved step by step.
    for mode in MODES {
        let baseline_service = service(mode);
        let labels = baseline_service.core().snapshot().labels().clone();
        let baseline = {
            let manager = baseline_service.manager();
            let id = manager.open(MOTIVATING_QUERY).unwrap();
            manager.run_to_completion(id).unwrap();
            fingerprint(&labels, &manager.close(id).unwrap())
        };
        let live_service = service(mode);
        let manager = live_service.manager();
        let id = manager.open(MOTIVATING_QUERY).unwrap();
        let mut toggle = false;
        loop {
            let update = if toggle {
                GraphUpdate::new().remove_edge("N6", "tram", "N1")
            } else {
                GraphUpdate::new().add_edge("N6", "tram", "N1")
            };
            toggle = !toggle;
            live_service.update(update).unwrap();
            if let SessionStatus::Halted(_) = manager.step(id).unwrap() {
                break;
            }
        }
        let live = fingerprint(&labels, &manager.close(id).unwrap());
        assert_eq!(live, baseline, "{mode:?}");
    }
}

// ------------------------------------------------- 3. new sessions see more

#[test]
fn post_publish_sessions_observe_the_new_edges() {
    for mode in MODES {
        let live = service(mode);
        let n5 = live.core().snapshot().node_by_name("N5").unwrap();
        let before = live.core().evaluate(MOTIVATING_QUERY).unwrap();
        assert!(
            !before.contains(n5),
            "{mode:?}: N5 reaches no cinema in the base graph"
        );

        live.update(figure1_update()).unwrap();

        // Plain reads on the latest core see the new edge…
        let after = live.core().evaluate(MOTIVATING_QUERY).unwrap();
        assert!(after.contains(n5), "{mode:?}");
        assert!(live.core().snapshot().node_by_name("C9").is_some());

        // …and a full served session converges onto the *new* answer.
        let outcome = live.serve_one(MOTIVATING_QUERY).unwrap();
        assert!(outcome.halt_reason.is_convergence(), "{mode:?}");
        let learned = outcome.learned.expect("a query is learned");
        assert_eq!(
            learned.answer.nodes(),
            after.nodes(),
            "{mode:?}: the learned answer is the post-publish answer"
        );
    }
}

#[test]
fn versioned_reads_and_writes_interleave_across_threads() {
    // One writer publishing oscillating updates, several reader threads
    // serving sessions — sessions always converge, every observed answer is
    // one of the two publishable states, and the store ends at a bounded
    // number of live epochs.
    let live = Arc::new(service(EvalMode::Frontier));
    let store: Arc<VersionedStore> = Arc::clone(live.store());
    std::thread::scope(|scope| {
        let writer = {
            let store = Arc::clone(&store);
            scope.spawn(move || {
                for round in 0..6 {
                    let update = if round % 2 == 0 {
                        GraphUpdate::new().add_edge("N5", "bus", "N1")
                    } else {
                        GraphUpdate::new().remove_edge("N5", "bus", "N1")
                    };
                    store.update(update).unwrap();
                }
            })
        };
        for _ in 0..3 {
            let live = Arc::clone(&live);
            scope.spawn(move || {
                for _ in 0..4 {
                    let outcome = live.serve_one(MOTIVATING_QUERY).unwrap();
                    assert!(outcome.halt_reason.is_convergence());
                }
            });
        }
        writer.join().unwrap();
    });
    assert_eq!(store.publish_count(), 6);
    assert_eq!(
        store.live_epochs(),
        1,
        "every superseded epoch was retired once its sessions closed"
    );
    let stream_ops: Vec<UpdateOp> = gps_datasets::update_stream(
        &figure1_graph().0,
        &gps_datasets::UpdateStreamConfig {
            operations: 20,
            seed: 9,
            ..Default::default()
        },
    );
    // A generated stream applies cleanly through the service update API too.
    live.update(GraphUpdate::from_ops(stream_ops)).unwrap();
    assert!(store.current_epoch() >= 7);
}
