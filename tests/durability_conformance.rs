//! Durability conformance suite — the crash contract of the WAL + checkpoint
//! store behind [`VersionedStore::open_durable`]:
//!
//! 1. **Crash at any byte offset is safe.**  Kill the write-ahead log at
//!    *every* record boundary and mid-record: recovery always yields a graph
//!    byte-identical to some published snapshot (the pre- or post-publish
//!    state of whichever publish the cut interrupted), never a torn hybrid,
//!    and the recovered epoch is monotone in the prefix length.
//! 2. **Corruption is detected, not propagated.**  A single flipped bit
//!    anywhere in the log body is caught by the record checksums (the
//!    corrupt suffix is discarded as a torn tail — no panic, no bad data);
//!    a corrupted magic number is a typed [`GpsError::CorruptLog`].
//! 3. **Restart is invisible to sessions.**  A served session on a
//!    recovered store replays the exact transcript the pre-crash store
//!    produced, across every [`EvalMode`].
//! 4. **Durability is free when unused, exact when used.**  The default
//!    in-memory store and a file-backed store publish byte-identical
//!    snapshots epoch for epoch; checkpoints bound the log and speed
//!    recovery without changing what is recovered.

use gps_core::prelude::*;
use gps_core::service::GpsService;
use gps_core::versioned::{GraphUpdate, VersionedStore};
use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
use gps_interactive::session::InteractionRecord;
use gps_store::{encode_snapshot, FileStore};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const MODES: [EvalMode; 3] = [EvalMode::Naive, EvalMode::Frontier, EvalMode::Parallel];

static DIRS: AtomicU64 = AtomicU64::new(0);

fn tmp_dir(tag: &str) -> PathBuf {
    let id = DIRS.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("gps-durability-{tag}-{}-{id}", std::process::id()))
}

/// A figure-1 builder with `every_n` as the checkpoint policy (0 = never).
fn builder(mode: EvalMode, every_n: u64) -> GpsBuilder {
    let (graph, _) = figure1_graph();
    Engine::builder(graph)
        .eval_mode(mode)
        .checkpoint_every_n_publishes(every_n)
}

/// Three publishes worth of updates: inserts, a deletion, and a batch that
/// builds on nodes introduced by an earlier publish.
fn updates() -> [GraphUpdate; 3] {
    [
        GraphUpdate::new()
            .add_node("C9")
            .add_edge("N5", "cinema", "C9"),
        GraphUpdate::new()
            .add_edge("N5", "bus", "N1")
            .remove_edge("N2", "restaurant", "R1"),
        GraphUpdate::new()
            .add_node("X1")
            .add_edge("C9", "tram", "X1"),
    ]
}

/// The one `.snap` checkpoint file of a store directory.
fn checkpoint_file(dir: &Path) -> PathBuf {
    let mut snaps: Vec<PathBuf> = fs::read_dir(dir)
        .unwrap()
        .map(|entry| entry.unwrap().path())
        .filter(|path| path.extension().is_some_and(|e| e == "snap"))
        .collect();
    assert_eq!(snaps.len(), 1, "exactly one checkpoint in {dir:?}");
    snaps.pop().unwrap()
}

/// The base checkpoint of a prepared store: file name + contents.
struct Checkpoint {
    name: String,
    bytes: Vec<u8>,
}

/// Publishes `updates()` into a fresh durable store (no checkpoints beyond
/// the base one), returning the expected snapshot encoding per epoch, the
/// final WAL image and the base checkpoint.
fn prepared_store(tag: &str) -> (Vec<Vec<u8>>, Vec<u8>, Checkpoint) {
    let dir = tmp_dir(tag);
    let (store, report) =
        VersionedStore::open_durable(&dir, builder(EvalMode::Frontier, 0)).unwrap();
    assert!(report.created);
    assert!(store.is_durable());
    let mut expected = vec![encode_snapshot(store.latest().snapshot())];
    for update in updates() {
        store.update(update).unwrap();
        expected.push(encode_snapshot(store.latest().snapshot()));
    }
    drop(store);
    let wal = fs::read(FileStore::wal_path(&dir)).unwrap();
    let checkpoint = checkpoint_file(&dir);
    let name = checkpoint
        .file_name()
        .unwrap()
        .to_str()
        .unwrap()
        .to_string();
    let bytes = fs::read(&checkpoint).unwrap();
    fs::remove_dir_all(&dir).unwrap();
    (expected, wal, Checkpoint { name, bytes })
}

/// Recovers a store from the given checkpoint + WAL image, asserting the
/// recovered snapshot is byte-identical to one of `expected` and returning
/// its epoch.
fn recover_and_check(
    trial: &Path,
    wal_image: &[u8],
    checkpoint: &Checkpoint,
    expected: &[Vec<u8>],
    context: &str,
) -> u64 {
    fs::create_dir_all(trial).unwrap();
    fs::write(trial.join(&checkpoint.name), &checkpoint.bytes).unwrap();
    fs::write(FileStore::wal_path(trial), wal_image).unwrap();
    let (store, report) =
        VersionedStore::open_durable(trial, builder(EvalMode::Frontier, 0)).unwrap();
    assert!(!report.created, "{context}");
    let epoch = store.current_epoch();
    assert_eq!(report.current_epoch, epoch, "{context}");
    assert_eq!(
        encode_snapshot(store.latest().snapshot()),
        expected[epoch as usize],
        "{context}: the recovered graph must be byte-identical to the epoch-{epoch} publish"
    );
    drop(store);
    fs::remove_dir_all(trial).unwrap();
    epoch
}

// --------------------------------------------- 1. crash at every byte offset

#[test]
fn recovery_is_exact_at_every_wal_truncation_point() {
    let (expected, wal, checkpoint) = prepared_store("truncate");
    let trial = tmp_dir("truncate-trial");
    let mut last_epoch = 0u64;
    for cut in 0..=wal.len() {
        let epoch = recover_and_check(
            &trial,
            &wal[..cut],
            &checkpoint,
            &expected,
            &format!("cut at byte {cut}"),
        );
        assert!(
            epoch >= last_epoch,
            "cut {cut}: a longer committed prefix can only recover more"
        );
        last_epoch = epoch;
    }
    assert_eq!(last_epoch, 3, "the full log recovers every publish");
}

// ------------------------------------------------- 2. corruption is detected

#[test]
fn single_bit_flips_are_detected_and_never_panic() {
    let (expected, wal, checkpoint) = prepared_store("bitflip");
    let trial = tmp_dir("bitflip-trial");
    let magic = gps_store::WAL_MAGIC.len();
    // Every byte of the record region (one rotating bit per byte): the flip
    // must be caught by a checksum, turning the corrupt suffix into a torn
    // tail — recovery still lands on a published snapshot.
    for offset in magic..wal.len() {
        let mut flipped = wal.clone();
        flipped[offset] ^= 1 << (offset % 8);
        recover_and_check(
            &trial,
            &flipped,
            &checkpoint,
            &expected,
            &format!("bit flip at byte {offset}"),
        );
    }
    // A flip inside the magic is not a torn write — it is a typed error.
    for offset in 0..magic {
        let mut flipped = wal.clone();
        flipped[offset] ^= 1 << (offset % 8);
        fs::create_dir_all(&trial).unwrap();
        fs::write(trial.join(&checkpoint.name), &checkpoint.bytes).unwrap();
        fs::write(FileStore::wal_path(&trial), &flipped).unwrap();
        let result = VersionedStore::open_durable(&trial, builder(EvalMode::Frontier, 0));
        assert!(
            matches!(result, Err(GpsError::CorruptLog(_))),
            "magic flip at byte {offset}: {result:?}"
        );
        fs::remove_dir_all(&trial).unwrap();
    }
}

#[test]
fn a_corrupt_checkpoint_is_a_typed_error() {
    let (_, wal, checkpoint) = prepared_store("badsnap");
    let trial = tmp_dir("badsnap-trial");
    fs::create_dir_all(&trial).unwrap();
    let mut snap = checkpoint.bytes.clone();
    let mid = snap.len() / 2;
    snap[mid] ^= 0x10;
    fs::write(trial.join(&checkpoint.name), &snap).unwrap();
    fs::write(FileStore::wal_path(&trial), &wal).unwrap();
    let result = VersionedStore::open_durable(&trial, builder(EvalMode::Frontier, 0));
    assert!(matches!(result, Err(GpsError::CorruptLog(_))), "{result:?}");
    fs::remove_dir_all(&trial).unwrap();
}

// -------------------------------------------- 3. restart invisible to users

#[derive(Debug, PartialEq)]
struct SessionFingerprint {
    transcript: Vec<InteractionRecord>,
    learned: Option<(String, Vec<NodeId>)>,
    halt: HaltReason,
}

fn fingerprint(
    labels: &LabelInterner,
    outcome: &gps_interactive::session::SessionOutcome,
) -> SessionFingerprint {
    SessionFingerprint {
        transcript: outcome.transcript.clone(),
        learned: outcome.learned.as_ref().map(|l| {
            (
                gps_automata::printer::print(&l.regex, labels),
                l.answer.nodes(),
            )
        }),
        halt: outcome.halt_reason,
    }
}

#[test]
fn recovered_stores_serve_byte_identical_transcripts() {
    for mode in MODES {
        let dir = tmp_dir("transcript");
        let (service, report) = GpsService::open_durable(&dir, builder(mode, 32)).unwrap();
        assert!(report.created, "{mode:?}");
        let [first, second, _] = updates();
        service.update(first).unwrap();
        service.update(second).unwrap();
        let labels = service.core().snapshot().labels().clone();
        let before = fingerprint(&labels, &service.serve_one(MOTIVATING_QUERY).unwrap());
        drop(service);

        let (service, report) = GpsService::open_durable(&dir, builder(mode, 32)).unwrap();
        assert!(!report.created, "{mode:?}");
        assert_eq!(report.replayed_publishes, 2, "{mode:?}");
        assert_eq!(report.current_epoch, 2, "{mode:?}");
        let after = fingerprint(&labels, &service.serve_one(MOTIVATING_QUERY).unwrap());
        assert_eq!(
            after, before,
            "{mode:?}: a restart must not perturb served sessions"
        );
        drop(service);
        fs::remove_dir_all(&dir).unwrap();
    }
}

// ----------------------------------- 4. parity, checkpoints, edge behaviors

#[test]
fn durable_publishes_match_the_in_memory_store_byte_for_byte() {
    let dir = tmp_dir("parity");
    let (durable, _) = VersionedStore::open_durable(&dir, builder(EvalMode::Frontier, 0)).unwrap();
    let memory = {
        let (graph, _) = figure1_graph();
        VersionedStore::new(
            Engine::builder(graph)
                .eval_mode(EvalMode::Frontier)
                .build_core(),
        )
    };
    assert!(!memory.is_durable());
    assert_eq!(memory.wal_bytes(), 0);
    for update in updates() {
        let durable_report = durable.update(update.clone()).unwrap();
        let memory_report = memory.update(update).unwrap();
        assert_eq!(durable_report.epoch, memory_report.epoch);
        assert_eq!(
            encode_snapshot(durable.latest().snapshot()),
            encode_snapshot(memory.latest().snapshot()),
            "epoch {}: the durability seam must not change what is published",
            durable_report.epoch
        );
        assert!(durable_report.durability.wal_bytes > 0);
        assert_eq!(memory_report.durability, DurabilityReport::default());
    }
    drop(durable);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn checkpoints_bound_the_log_and_speed_recovery() {
    let dir = tmp_dir("checkpoint");
    let (store, _) = VersionedStore::open_durable(&dir, builder(EvalMode::Frontier, 2)).unwrap();
    for i in 0..5u64 {
        let update = if i % 2 == 0 {
            GraphUpdate::new().add_edge("N6", "tram", "N1")
        } else {
            GraphUpdate::new().remove_edge("N6", "tram", "N1")
        };
        let report = store.update(update).unwrap();
        assert_eq!(
            report.durability.checkpointed,
            i % 2 == 1,
            "publish {}: checkpoint due every 2nd publish",
            i + 1
        );
    }
    assert_eq!(store.current_epoch(), 5);
    drop(store);

    let (store, report) =
        VersionedStore::open_durable(&dir, builder(EvalMode::Frontier, 2)).unwrap();
    assert_eq!(report.checkpoint_epoch, 4, "the last due checkpoint");
    assert_eq!(
        report.replayed_publishes, 1,
        "only the post-checkpoint tail"
    );
    assert_eq!(report.current_epoch, 5);
    // The replay itself was folded into a fresh checkpoint, so the next
    // open replays nothing.
    assert!(FileStore::checkpoint_path(&dir, 5).exists());
    drop(store);
    let (_, report) = VersionedStore::open_durable(&dir, builder(EvalMode::Frontier, 2)).unwrap();
    assert_eq!(report.replayed_publishes, 0);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn staged_but_unpublished_ops_are_discarded_at_recovery() {
    let dir = tmp_dir("staged");
    let (store, _) = VersionedStore::open_durable(&dir, builder(EvalMode::Frontier, 32)).unwrap();
    let [first, ..] = updates();
    store.update(first).unwrap();
    store.stage(GraphUpdate::new().add_node("GHOST")).unwrap();
    assert_eq!(store.staged_len(), 1);
    drop(store);

    let (store, report) =
        VersionedStore::open_durable(&dir, builder(EvalMode::Frontier, 32)).unwrap();
    assert_eq!(
        report.current_epoch, 1,
        "only the published update survives"
    );
    assert!(
        report.discarded_bytes > 0,
        "the staged record was discarded"
    );
    assert_eq!(store.staged_len(), 0);
    assert!(store.latest().snapshot().node_by_name("GHOST").is_none());
    assert!(store.latest().snapshot().node_by_name("C9").is_some());
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn a_failed_publish_leaves_no_trace_after_recovery() {
    let dir = tmp_dir("failed");
    let (store, _) = VersionedStore::open_durable(&dir, builder(EvalMode::Frontier, 0)).unwrap();
    let err = store
        .update(GraphUpdate::new().add_edge("N1", "bus", "Nowhere"))
        .unwrap_err();
    assert!(matches!(err, GpsError::UnknownNode(_)));
    assert_eq!(store.current_epoch(), 0);
    let [first, ..] = updates();
    store.update(first).unwrap();
    let expected = encode_snapshot(store.latest().snapshot());
    drop(store);

    let (store, report) =
        VersionedStore::open_durable(&dir, builder(EvalMode::Frontier, 0)).unwrap();
    assert_eq!(report.replayed_publishes, 1);
    assert_eq!(report.current_epoch, 1);
    assert_eq!(
        encode_snapshot(store.latest().snapshot()),
        expected,
        "the failed publish's staged record must not contaminate the replay"
    );
    drop(store);
    fs::remove_dir_all(&dir).unwrap();
}
