//! Execution-engine conformance suite: every mode of the `gps-exec`
//! frontier/batch engine must be **answer-identical** to the naive
//! node-at-a-time evaluator in `gps_rpq::eval`.
//!
//! Differential properties over the transport, scale-free, figure1,
//! biological and random corpora:
//!
//! * single-query evaluation under the planner-chosen plan and under every
//!   *forced* plan (push / pull / adaptive);
//! * shared-scratch sequential batches and the scoped-thread parallel
//!   executor (all thread counts preserve input order);
//! * direction-aware multi-source membership checks (both the per-source
//!   forward path and the global fallback);
//! * the full `gps_core` engine under every `EvalMode`, including cached
//!   `evaluate` / `evaluate_many` and an end-to-end interactive scenario.

use gps_automata::{Dfa, Regex};
use gps_core::prelude::*;
use gps_datasets::biological::{self, BiologicalConfig};
use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
use gps_datasets::queries;
use gps_datasets::scale_free::{self, ScaleFreeConfig};
use gps_datasets::transport::{self, TransportConfig};
use gps_exec::{BatchEvaluator, Plan};
use gps_graph::DeltaGraph;
use gps_rpq::DfaEvaluator;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small random multigraph over a 4-letter alphabet.
fn random_graph(rng: &mut StdRng, max_nodes: usize, max_edges: usize) -> Graph {
    let n = rng.gen_range(1..=max_nodes);
    let mut g = Graph::new();
    for name in ["a", "b", "c", "d"] {
        g.label(name);
    }
    let ids = g.add_nodes("v", n);
    for _ in 0..rng.gen_range(0..=max_edges) {
        let s = ids[rng.gen_range(0..n)];
        let t = ids[rng.gen_range(0..n)];
        g.add_edge(s, LabelId::new(rng.gen_range(0u32..4)), t);
    }
    g
}

/// The corpora the differential properties run over.
fn corpus() -> Vec<(String, Graph)> {
    let mut graphs = Vec::new();
    let mut rng = StdRng::seed_from_u64(0xE7EC);
    for i in 0..10 {
        graphs.push((format!("random-{i}"), random_graph(&mut rng, 12, 30)));
    }
    graphs.push(("figure1".to_string(), figure1_graph().0));
    graphs.push((
        "transport".to_string(),
        transport::generate(&TransportConfig::with_neighborhoods(25, 7)).graph,
    ));
    graphs.push((
        "scale-free".to_string(),
        scale_free::generate(&ScaleFreeConfig {
            nodes: 200,
            seed: 11,
            ..ScaleFreeConfig::default()
        }),
    ));
    graphs.push((
        "biological".to_string(),
        biological::generate(&BiologicalConfig::with_entities(40, 3)),
    ));
    graphs
}

/// The query set evaluated differentially on each graph: the per-domain
/// workloads plus structural edge cases.
fn query_set(graph: &Graph) -> Vec<Dfa> {
    let mut dfas: Vec<Dfa> = queries::standard_workload(graph)
        .queries
        .iter()
        .chain(queries::batch_workload(graph, 10).queries.iter())
        .map(|q| q.dfa().clone())
        .collect();
    dfas.push(Dfa::from_regex(&Regex::Empty));
    dfas.push(Dfa::from_regex(&Regex::Epsilon));
    if let Some(label) = graph.labels().ids().next() {
        dfas.push(Dfa::from_regex(&Regex::star(Regex::symbol(label))));
    }
    dfas
}

#[test]
fn frontier_plans_match_the_naive_evaluator() {
    for (name, graph) in corpus() {
        let naive = gps_rpq::NaiveEvaluator::new(&graph);
        let planner_engine = BatchEvaluator::new(&graph);
        let forced: Vec<(Plan, BatchEvaluator)> =
            [Plan::Reverse, Plan::Forward, Plan::Bidirectional]
                .into_iter()
                .map(|plan| (plan, BatchEvaluator::new(&graph).with_plan(plan)))
                .collect();
        for (i, dfa) in query_set(&graph).iter().enumerate() {
            let expected = naive.evaluate_dfa(dfa);
            assert_eq!(
                planner_engine.evaluate(dfa),
                expected,
                "{name} query {i}: planner-chosen plan"
            );
            for (plan, engine) in &forced {
                assert_eq!(
                    engine.evaluate(dfa),
                    expected,
                    "{name} query {i}: forced {plan:?}"
                );
            }
        }
    }
}

#[test]
fn batch_and_parallel_executors_preserve_answers_and_order() {
    for (name, graph) in corpus() {
        let naive = gps_rpq::NaiveEvaluator::new(&graph);
        let engine = BatchEvaluator::new(&graph);
        let dfas = query_set(&graph);
        let refs: Vec<&Dfa> = dfas.iter().collect();
        let expected: Vec<QueryAnswer> = refs.iter().map(|d| naive.evaluate_dfa(d)).collect();
        assert_eq!(engine.evaluate_many(&refs), expected, "{name}: sequential");
        for threads in [1, 2, 4, 7] {
            assert_eq!(
                engine.evaluate_many_parallel(&refs, threads),
                expected,
                "{name}: parallel x{threads}"
            );
        }
    }
}

#[test]
fn multi_source_checks_match_global_answers() {
    for (name, graph) in corpus() {
        let engine = BatchEvaluator::new(&graph);
        let all: Vec<NodeId> = GraphBackend::nodes(&graph).collect();
        for (i, dfa) in query_set(&graph).iter().enumerate() {
            let expected = gps_rpq::eval::evaluate(&graph, dfa);
            // Few sources exercises the forward early-exit path; the full
            // node set exercises the global fallback.
            let few: Vec<NodeId> = all.iter().copied().take(2).collect();
            for (node, selected) in few.iter().zip(engine.evaluate_sources(dfa, &few)) {
                assert_eq!(selected, expected.contains(*node), "{name} query {i} (few)");
            }
            for (node, selected) in all.iter().zip(engine.evaluate_sources(dfa, &all)) {
                assert_eq!(selected, expected.contains(*node), "{name} query {i} (all)");
            }
        }
    }
}

#[test]
fn engine_eval_modes_are_observationally_identical() {
    let net = transport::generate(&TransportConfig::with_neighborhoods(25, 7));
    let syntaxes = ["(tram+bus)*.cinema", "cinema", "tram*.cinema", "bus"];
    let naive = Engine::builder(net.graph.clone()).build();
    let expected: Vec<Vec<NodeId>> = syntaxes
        .iter()
        .map(|q| naive.evaluate(q).unwrap().nodes())
        .collect();
    for mode in [EvalMode::Naive, EvalMode::Frontier, EvalMode::Parallel] {
        for csr in [false, true] {
            let builder = Engine::builder(net.graph.clone()).eval_mode(mode);
            let (answers, many): (Vec<Vec<NodeId>>, Vec<QueryAnswer>) = if csr {
                let engine = builder.build_csr();
                (
                    syntaxes
                        .iter()
                        .map(|q| engine.evaluate(q).unwrap().nodes())
                        .collect(),
                    engine.evaluate_many(&syntaxes).unwrap(),
                )
            } else {
                let engine = builder.build();
                (
                    syntaxes
                        .iter()
                        .map(|q| engine.evaluate(q).unwrap().nodes())
                        .collect(),
                    engine.evaluate_many(&syntaxes).unwrap(),
                )
            };
            for ((answer, batch_answer), expected) in answers.iter().zip(&many).zip(&expected) {
                assert_eq!(answer, expected, "{mode:?} csr={csr}");
                assert_eq!(
                    &batch_answer.nodes(),
                    expected,
                    "{mode:?} csr={csr} (batch)"
                );
            }
        }
    }
}

#[test]
fn spelling_sweeps_match_the_reference_and_the_acceptor_evaluation() {
    use gps_graph::PathEnumerator;
    for (name, graph) in corpus() {
        let naive = gps_rpq::NaiveEvaluator::new(&graph);
        let engine = BatchEvaluator::new(&graph);
        // Word sets as sessions produce them: the bounded words of a few
        // nodes (what a negative label covers), plus edge cases.
        let mut word_sets: Vec<Vec<Word>> = GraphBackend::nodes(&graph)
            .take(4)
            .map(|node| {
                PathEnumerator::new(3)
                    .words_from(&graph, node)
                    .into_iter()
                    .collect()
            })
            .collect();
        word_sets.push(Vec::new());
        if let Some(label) = graph.labels().ids().next() {
            word_sets.push(vec![vec![label], vec![label, label]]);
        }
        for (i, words) in word_sets.iter().enumerate() {
            // The three nodes_spelling implementations agree: trie sweep on
            // the adjacency (naive), trie sweep on the label index (batch),
            // and the prefix-tree-acceptor evaluation (trait default).
            let reference = gps_rpq::eval::nodes_spelling(&graph, words);
            assert_eq!(
                DfaEvaluator::nodes_spelling(&naive, words),
                reference,
                "{name} set {i}: naive sweep"
            );
            assert_eq!(
                DfaEvaluator::nodes_spelling(&engine, words),
                reference,
                "{name} set {i}: indexed sweep"
            );
            if !words.is_empty() {
                let acceptor = gps_automata::pta::build_pta(words);
                assert_eq!(
                    DfaEvaluator::evaluate_dfa(&engine, &acceptor).nodes(),
                    reference,
                    "{name} set {i}: acceptor evaluation"
                );
            }
            // spelling_counts: engine sweeps equal the reference, and each
            // node's count is exactly the number of words it spells.
            let counts = gps_rpq::eval::spelling_counts(&graph, words);
            assert_eq!(
                DfaEvaluator::spelling_counts(&naive, words),
                counts,
                "{name} set {i}: naive counts"
            );
            assert_eq!(
                DfaEvaluator::spelling_counts(&engine, words),
                counts,
                "{name} set {i}: indexed counts"
            );
            let spellers: Vec<NodeId> = counts.iter().map(|&(node, _)| node).collect();
            assert_eq!(spellers, reference, "{name} set {i}: counts cover spellers");
            for &(node, count) in &counts {
                let spelled = words
                    .iter()
                    .filter(|w| {
                        gps_rpq::eval::nodes_spelling(&graph, std::slice::from_ref(*w))
                            .contains(&node)
                    })
                    .count();
                assert_eq!(count as usize, spelled, "{name} set {i}: node {node}");
            }
        }
    }
}

#[test]
fn interactive_sessions_converge_identically_across_modes() {
    let (graph, _) = figure1_graph();
    let reference = Engine::builder(graph.clone())
        .build()
        .interactive_with_validation(MOTIVATING_QUERY, 0)
        .unwrap();
    for mode in [EvalMode::Frontier, EvalMode::Parallel] {
        let report = Engine::builder(graph.clone())
            .eval_mode(mode)
            .build()
            .interactive_with_validation(MOTIVATING_QUERY, 0)
            .unwrap();
        assert_eq!(report.goal_reached, reference.goal_reached, "{mode:?}");
        assert_eq!(report.interactions, reference.interactions, "{mode:?}");
        assert_eq!(report.learned, reference.learned, "{mode:?}");
    }
}

/// Two frontier evaluators must expose the *same* index: every adjacency
/// slice, per-label edge count, planner statistic and query answer.
fn assert_indexes_identical(
    context: &str,
    reference: &BatchEvaluator,
    other: &BatchEvaluator,
    dfas: &[Dfa],
) {
    use gps_exec::Direction;
    let a = reference.shared_index();
    let b = other.shared_index();
    assert_eq!(a.node_count(), b.node_count(), "{context}: node count");
    assert_eq!(a.label_count(), b.label_count(), "{context}: label count");
    assert_eq!(
        a.memory_bytes(),
        b.memory_bytes(),
        "{context}: memory footprint"
    );
    for label in (0..a.label_count()).map(LabelId::from) {
        assert_eq!(
            a.label_edge_count(label),
            b.label_edge_count(label),
            "{context}: edge count of label {label:?}"
        );
        for direction in [Direction::Forward, Direction::Reverse] {
            for node in 0..a.node_count() {
                assert_eq!(
                    a.neighbors(direction, label, node),
                    b.neighbors(direction, label, node),
                    "{context}: {direction:?} adjacency of label {label:?}, node {node}"
                );
            }
        }
    }
    assert_eq!(reference.stats(), other.stats(), "{context}: planner stats");
    for (i, dfa) in dfas.iter().enumerate() {
        assert_eq!(
            reference.evaluate(dfa),
            other.evaluate(dfa),
            "{context}: query {i}"
        );
    }
}

/// Sharded index builds and patches are byte-identical to the sequential
/// path at *every* shard count — fresh builds and three chained random
/// deltas (inserts, removals and a fresh node each round) both — and the
/// sparse and dense frontier representations answer identically on top of
/// them.
#[test]
fn sharded_builds_and_chained_patches_match_sequential_at_every_shard_count() {
    use gps_exec::FrontierPolicy;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let shard_counts: Vec<usize> = vec![2, 7, cores];
    let mut rng = StdRng::seed_from_u64(0x5AA5_D00D);
    let mut corpora: Vec<(String, Graph)> = (0..4)
        .map(|i| (format!("random-{i}"), random_graph(&mut rng, 14, 40)))
        .collect();
    corpora.push((
        "scale-free".to_string(),
        scale_free::generate(&ScaleFreeConfig {
            nodes: 250,
            seed: 23,
            ..ScaleFreeConfig::default()
        }),
    ));
    for (name, graph) in corpora {
        let dfas = query_set(&graph);
        let mut base = std::sync::Arc::new(CsrGraph::from_graph(&graph));
        let mut reference = BatchEvaluator::from_csr_sharded(&base, 1);
        let mut sharded: Vec<(usize, BatchEvaluator)> = shard_counts
            .iter()
            .map(|&s| (s, BatchEvaluator::from_csr_sharded(&base, s)))
            .collect();
        for (s, evaluator) in &sharded {
            assert_indexes_identical(&format!("{name}, fresh x{s}"), &reference, evaluator, &dfas);
        }
        for round in 0..3 {
            let mut staged = DeltaGraph::new(std::sync::Arc::clone(&base));
            let fresh = staged.add_node(format!("delta-{round}"));
            let nodes: Vec<NodeId> = GraphBackend::nodes(&*base).collect();
            let pick = |rng: &mut StdRng| nodes[rng.gen_range(0..nodes.len())];
            for _ in 0..5 {
                let label = LabelId::new(rng.gen_range(0u32..4));
                staged.add_edge(pick(&mut rng), label, pick(&mut rng));
                staged.add_edge(fresh, label, pick(&mut rng));
            }
            if let Some(edge) = GraphBackend::nodes(&*base)
                .find_map(|node| GraphBackend::out_edges(&*base, node).next())
                .map(|(_, edge)| edge)
            {
                staged.remove_edge(edge.source, edge.label, edge.target);
            }
            let delta = staged.delta();
            let next = std::sync::Arc::new(staged.compact());
            reference = reference.apply_delta(&next, &delta);
            for (s, evaluator) in &mut sharded {
                *evaluator = evaluator.apply_delta(&next, &delta);
                assert_eq!(
                    evaluator.shared_index().shards(),
                    *s,
                    "{name}: shard setting survives apply_delta"
                );
            }
            base = next;
            for (s, evaluator) in &sharded {
                assert_indexes_identical(
                    &format!("{name}, round {round} x{s}"),
                    &reference,
                    evaluator,
                    &dfas,
                );
            }
        }
        // Sparse and dense frontiers agree on the final patched snapshot.
        let dense = reference
            .clone()
            .with_frontier_policy(FrontierPolicy::Dense);
        let sparse = reference
            .clone()
            .with_frontier_policy(FrontierPolicy::Sparse);
        for (i, dfa) in dfas.iter().enumerate() {
            assert_eq!(
                dense.evaluate(dfa),
                sparse.evaluate(dfa),
                "{name}: frontier policies diverge on query {i}"
            );
        }
    }
}

#[test]
fn frontier_cache_stays_correct_under_eviction() {
    let net = transport::generate(&TransportConfig::with_neighborhoods(10, 3));
    let csr = CsrGraph::from_graph(&net.graph);
    let cache =
        gps_rpq::EvalCache::with_evaluator(csr.clone(), Box::new(BatchEvaluator::from_csr(&csr)))
            .with_capacity(2);
    let regexes: Vec<Regex> = queries::batch_workload(&net.graph, 8)
        .queries
        .iter()
        .map(|q| q.regex().clone())
        .collect();
    // Replay the workload twice through the tiny cache: every answer must
    // still match a fresh naive evaluation.
    for round in 0..2 {
        for regex in &regexes {
            let through_cache = cache.evaluate(regex);
            let fresh = gps_rpq::eval::evaluate(&net.graph, &Dfa::from_regex(regex));
            assert_eq!(*through_cache, fresh, "round {round}");
        }
    }
    assert!(cache.len() <= 2);
    assert!(cache.evictions() > 0, "the workload overflows the capacity");
}
