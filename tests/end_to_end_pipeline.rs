//! End-to-end pipeline tests exercising every layer together: graph I/O →
//! query parsing → evaluation → learning → interactive session → transcript
//! serialization.

use gps_core::{Gps, Transcript};
use gps_datasets::figure1::MOTIVATING_QUERY;
use gps_graph::io;
use gps_interactive::session::{Session, SessionConfig};
use gps_interactive::strategy::InformativePathsStrategy;
use gps_interactive::user::SimulatedUser;
use gps_rpq::PathQuery;

const FIGURE1_EDGE_LIST: &str = "\
# Figure 1 of the paper, edge-list format
N1 tram N4
N1 bus N4
N2 bus N1
N2 bus N3
N3 bus N5
N4 bus N5
N5 tram N3
N6 bus N5
N4 cinema C1
N6 cinema C2
N2 restaurant R1
N5 restaurant R2
";

#[test]
fn graph_loaded_from_edge_list_gives_the_same_answer() {
    let graph = io::parse_edge_list(FIGURE1_EDGE_LIST).unwrap();
    assert_eq!(graph.node_count(), 10);
    assert_eq!(graph.edge_count(), 12);
    let gps = Gps::new(graph);
    let answer = gps.evaluate(MOTIVATING_QUERY).unwrap();
    let mut names: Vec<&str> = answer
        .nodes()
        .into_iter()
        .map(|n| gps.graph().node_name(n))
        .collect();
    names.sort_unstable();
    assert_eq!(names, vec!["N1", "N2", "N4", "N6"]);
}

#[test]
fn edge_list_and_json_round_trips_preserve_query_answers() {
    let graph = io::parse_edge_list(FIGURE1_EDGE_LIST).unwrap();
    let query = PathQuery::parse(MOTIVATING_QUERY, graph.labels()).unwrap();
    let original = query.evaluate(&graph).nodes();

    let edge_list = io::to_edge_list(&graph);
    let reloaded = io::parse_edge_list(&edge_list).unwrap();
    let q2 = PathQuery::parse(MOTIVATING_QUERY, reloaded.labels()).unwrap();
    assert_eq!(q2.evaluate(&reloaded).len(), original.len());

    let json = io::to_json(&graph).unwrap();
    let reloaded = io::from_json(&json).unwrap();
    let q3 = PathQuery::parse(MOTIVATING_QUERY, reloaded.labels()).unwrap();
    assert_eq!(q3.evaluate(&reloaded).nodes(), original);
}

#[test]
fn full_session_on_a_loaded_graph_produces_a_serializable_transcript() {
    let graph = io::parse_edge_list(FIGURE1_EDGE_LIST).unwrap();
    let goal = PathQuery::parse(MOTIVATING_QUERY, graph.labels()).unwrap();
    let mut user = SimulatedUser::new(goal.clone(), &graph);
    let mut strategy = InformativePathsStrategy::default();
    let mut session = Session::new(&graph, SessionConfig::default());
    let outcome = session.run(&mut strategy, &mut user);

    let transcript = Transcript::from_outcome(&graph, &outcome);
    let json = transcript.to_json().unwrap();
    let restored: Transcript = serde_json::from_str(&json).unwrap();
    assert_eq!(restored.entries.len(), transcript.entries.len());
    assert_eq!(restored.learned_query, transcript.learned_query);
    assert!(restored.learned_query.is_some());
    // The learned query, reparsed from its printed form, still gives the goal
    // answer — the full loop closes.
    let printed = restored.learned_query.unwrap();
    let reparsed = PathQuery::parse(&printed, graph.labels()).unwrap();
    assert_eq!(
        reparsed.evaluate(&graph).nodes(),
        goal.evaluate(&graph).nodes()
    );
}

#[test]
fn learned_queries_transfer_to_grown_graphs() {
    // Learn on the Figure 1 graph, then apply the learned query to a graph
    // extended with new neighborhoods: the semantics transfer because the
    // query is a regular expression, not a set of node ids.
    let graph = io::parse_edge_list(FIGURE1_EDGE_LIST).unwrap();
    let gps = Gps::new(graph.clone());
    let report = gps
        .interactive_with_validation(MOTIVATING_QUERY, 0)
        .unwrap();
    let learned_syntax = report.learned.expect("learned a query");

    let mut grown = graph.clone();
    let n7 = grown.add_node("N7");
    let n8 = grown.add_node("N8");
    let c3 = grown.add_node("C3");
    let tram = grown.label_id("tram").unwrap();
    let cinema = grown.label_id("cinema").unwrap();
    grown.add_edge(n7, tram, n8);
    grown.add_edge(n8, cinema, c3);

    let learned = PathQuery::parse(&learned_syntax, grown.labels()).unwrap();
    let answer = learned.evaluate(&grown);
    assert!(
        answer.contains(n7),
        "new neighborhood N7 reaches a cinema by tram"
    );
    assert!(answer.contains(n8));
    assert!(!answer.contains(c3));
}
