//! IVM conformance suite — delta-driven incremental answer maintenance
//! across epochs must be *invisible* except in latency:
//!
//! 1. **Tier-1 carries are free and exact.**  After a publish whose label no
//!    cached query's DFA alphabet contains, every cached answer is migrated
//!    verbatim ([`PublishReport::carried_answers`]), the first post-publish
//!    read of each query runs **zero frontier rounds**
//!    (`gps_exec_frontier_rounds_total` is unchanged), and the served
//!    answers equal a from-scratch evaluation on the new snapshot.
//! 2. **Tier-2 reseeds converge.**  Across chained random insert-only
//!    epochs that *do* touch the query alphabet, the seeded delta-restricted
//!    fixed point produces exactly the cold-evaluation answers, under every
//!    [`EvalMode`]; the frontier modes actually take the reseed path.
//! 3. **Tier-3 delete-reseeds converge.**  Deltas containing removals take
//!    the delete-aware over-delete/re-derive path in the frontier modes:
//!    support counts are decremented along removed edges, zero-support
//!    configurations over-deleted transitively, survivors re-derived — and
//!    the migrated answers are byte-identical to cold evaluation across
//!    chained random **mixed** insert+delete epochs.  The naive evaluator
//!    captures no seed and still recomputes cold, and a saturation budget of
//!    `0.0` restores the recompute-everything behavior.

use gps_core::prelude::*;
use gps_core::service::GpsService;
use gps_core::versioned::GraphUpdate;
use gps_datasets::scale_free::{self, ScaleFreeConfig};
use gps_rpq::PathQuery;
use gps_telemetry::MetricsRegistry;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;

const MODES: [EvalMode; 3] = [EvalMode::Naive, EvalMode::Frontier, EvalMode::Parallel];

fn scale_free_graph(nodes: usize) -> Graph {
    scale_free::generate(&ScaleFreeConfig {
        nodes,
        seed: 11,
        ..ScaleFreeConfig::default()
    })
}

/// Sixteen distinct queries over the generated `a0..a3` alphabet — the warm
/// cache every test publishes against.
fn warm_queries(graph: &Graph) -> Vec<PathQuery> {
    let name = |i: u32| graph.labels().name(LabelId::new(i)).unwrap().to_string();
    let l: Vec<String> = (0..4).map(name).collect();
    [
        l[0].clone(),
        l[1].clone(),
        l[2].clone(),
        l[3].clone(),
        format!("{}.{}", l[0], l[1]),
        format!("{}.{}", l[1], l[2]),
        format!("{}.{}", l[2], l[3]),
        format!("{}.{}", l[3], l[0]),
        format!("{}*", l[0]),
        format!("{}*.{}", l[1], l[2]),
        format!("({}+{})*.{}", l[0], l[1], l[2]),
        format!("({}+{})*.{}", l[2], l[3], l[0]),
        format!("{}.{}*", l[0], l[1]),
        format!("({}+{}).{}", l[0], l[2], l[3]),
        format!("{}.{}.{}", l[1], l[2], l[3]),
        format!("({}+{})*.{}", l[1], l[3], l[2]),
    ]
    .iter()
    .map(|syntax| PathQuery::parse(syntax, graph.labels()).expect("query over generated alphabet"))
    .collect()
}

fn warm(service: &GpsService, queries: &[PathQuery]) {
    let core = service.core();
    let cache = core.eval_cache();
    for q in queries {
        cache.evaluate_compiled(q.regex(), q.dfa());
    }
}

/// Every cached query answer on the service's latest epoch must equal a
/// from-scratch evaluation of the same query on the same snapshot.
fn assert_matches_cold(service: &GpsService, queries: &[PathQuery], context: &str) {
    let core = service.core();
    let cache = core.eval_cache();
    let snapshot = core.snapshot();
    for q in queries {
        let live = cache.evaluate_compiled(q.regex(), q.dfa());
        let cold = q.evaluate_csr(snapshot);
        assert_eq!(
            *live,
            cold,
            "{context}: {} diverged from cold evaluation",
            q.display(snapshot.labels())
        );
    }
}

/// A 4-op publish attaching the lowest-degree node pairs under the fresh
/// label `live` — an update no `a0..a3` query can observe.
fn leaf_update(graph: &Graph) -> GraphUpdate {
    let mut by_degree: Vec<NodeId> = graph.nodes().collect();
    by_degree.sort_by_key(|&n| (graph.out_degree(n) + graph.in_degree(n), n.index()));
    let mut update = GraphUpdate::new();
    for pair in by_degree.chunks(2).take(4) {
        if let [source, target] = pair {
            update = update.add_edge(graph.node_name(*source), "live", graph.node_name(*target));
        }
    }
    update
}

// --------------------------------------------------- 1. Tier-1 carry exact

#[test]
fn label_disjoint_publish_carries_answers_with_zero_frontier_rounds() {
    let graph = scale_free_graph(2_000);
    let registry = Arc::new(MetricsRegistry::enabled());
    let service = GpsService::new(
        Engine::builder(graph.clone())
            .eval_mode(EvalMode::Frontier)
            .metrics(Arc::clone(&registry))
            .build_core(),
    );
    let queries = warm_queries(&graph);
    warm(&service, &queries);

    let report = service.update(leaf_update(&graph)).unwrap();
    assert_eq!(
        report.carried_answers,
        queries.len(),
        "every query alphabet is disjoint from the published label"
    );
    assert_eq!(report.reseeded_answers, 0);
    assert_eq!(report.recomputed_answers, 0);
    assert_eq!(report.added_edges, 4);

    // The first post-publish read of every carried query is answered from
    // the migrated cache: not a single frontier round runs.
    let rounds_before = registry
        .snapshot()
        .counter("gps_exec_frontier_rounds_total")
        .expect("frontier mode records rounds");
    assert_matches_cold(&service, &queries, "after leaf publish");
    let rounds_after = registry
        .snapshot()
        .counter("gps_exec_frontier_rounds_total")
        .unwrap();
    assert_eq!(
        rounds_before, rounds_after,
        "carried answers must serve without any evaluation"
    );

    // The migration split is also on the shared counters.
    let snapshot = registry.snapshot();
    assert_eq!(
        snapshot.counter("gps_rpq_cache_carried_total"),
        Some(queries.len() as u64)
    );
    assert_eq!(snapshot.counter("gps_rpq_cache_reseeded_total"), Some(0));
    assert_eq!(snapshot.counter("gps_rpq_cache_fallback_total"), Some(0));
}

#[test]
fn retired_epochs_report_their_dropped_entries() {
    let graph = scale_free_graph(200);
    let registry = Arc::new(MetricsRegistry::enabled());
    let service = GpsService::new(
        Engine::builder(graph.clone())
            .eval_mode(EvalMode::Frontier)
            .metrics(Arc::clone(&registry))
            .build_core(),
    );
    let queries = warm_queries(&graph);
    warm(&service, &queries);
    service.core().eval_cache().bounded_words(2);

    // No session pins epoch 0, so the publish retires it — and the retired
    // cache's entries (16 answers + 1 word snapshot) land on the counter.
    let report = service.update(leaf_update(&graph)).unwrap();
    assert_eq!(report.retired_epochs, 1);
    assert_eq!(
        registry.snapshot().counter("gps_rpq_cache_retired_total"),
        Some(queries.len() as u64 + 1)
    );
}

// ------------------------------------------------- 2. Tier-2 reseed exact

/// One random insert-only publish: a fresh node attached into the graph
/// plus a few `a0..a3` edges between existing nodes — touching the query
/// alphabet on purpose.
fn random_insert_update(graph: &Graph, rng: &mut StdRng, round: usize) -> GraphUpdate {
    let n = graph.node_count();
    let pick = |rng: &mut StdRng| {
        graph
            .node_name(NodeId::from(rng.gen_range(0..n)))
            .to_string()
    };
    let fresh = format!("ivm{round}");
    let mut update =
        GraphUpdate::new()
            .add_node(fresh.clone())
            .add_edge(fresh.as_str(), "a0", pick(rng));
    for _ in 0..3 {
        let source = pick(rng);
        let target = pick(rng);
        let label = format!("a{}", rng.gen_range(0..4u32));
        update = update.add_edge(source, label, target);
    }
    update
}

#[test]
fn insert_only_epochs_reseed_to_exactly_the_cold_answers() {
    let graph = scale_free_graph(400);
    for mode in MODES {
        let service = GpsService::new(Engine::builder(graph.clone()).eval_mode(mode).build_core());
        let queries = warm_queries(&graph);
        warm(&service, &queries);
        let mut rng = StdRng::seed_from_u64(0x1B4D_5EED);
        let mut reseeded = 0usize;
        for epoch in 1..=4u64 {
            let update = random_insert_update(&graph, &mut rng, epoch as usize);
            let report = service.update(update).unwrap();
            assert_eq!(report.epoch, epoch, "{mode:?}");
            assert_eq!(
                report.carried_answers
                    + report.reseeded_answers
                    + report.delete_reseeded_answers
                    + report.recomputed_answers,
                queries.len(),
                "{mode:?}, epoch {epoch}: the migration split partitions the cache"
            );
            assert_eq!(
                report.delete_reseeded_answers, 0,
                "{mode:?}, epoch {epoch}: insert-only deltas never take the delete path"
            );
            reseeded += report.reseeded_answers;
            assert_matches_cold(&service, &queries, &format!("{mode:?}, epoch {epoch}"));
        }
        match mode {
            // The naive evaluator captures no seed: touched entries are
            // always recomputed, never reseeded.
            EvalMode::Naive => assert_eq!(reseeded, 0),
            // The frontier modes capture seeds and must actually use them.
            _ => assert!(
                reseeded > 0,
                "{mode:?}: insert-only touched epochs must take the reseed path"
            ),
        }
    }
}

/// A query whose DFA start state is accepting (`a0*` matches every node via
/// the empty word) *saturates* the start state's alive set — the historical
/// frontier early-exit path returned before reaching the full product fixed
/// point and therefore captured no resume seed, silently downgrading every
/// touched publish to a cold recompute.  Capturing evaluations now always
/// run to the true fixed point: the seed exists, the insert-only publish
/// takes the reseed path, and the reseeded answer equals a cold evaluation.
#[test]
fn start_state_saturating_queries_still_capture_and_reseed() {
    let graph = scale_free_graph(400);
    let saturating =
        PathQuery::parse("a0*", graph.labels()).expect("a0 exists in the generated alphabet");
    for mode in [EvalMode::Frontier, EvalMode::Parallel] {
        let service = GpsService::new(Engine::builder(graph.clone()).eval_mode(mode).build_core());
        warm(&service, std::slice::from_ref(&saturating));
        // Every node already matches (epsilon ⊆ a0*): the alive set of the
        // start state is saturated from round zero.
        assert_eq!(
            service
                .core()
                .eval_cache()
                .evaluate_compiled(saturating.regex(), saturating.dfa())
                .nodes()
                .len(),
            graph.node_count(),
        );
        let mut rng = StdRng::seed_from_u64(0xCAFE);
        let report = service
            .update(random_insert_update(&graph, &mut rng, 1))
            .unwrap();
        assert_eq!(
            report.reseeded_answers, 1,
            "{mode:?}: the saturating query must reseed, not recompute"
        );
        assert_eq!(report.recomputed_answers, 0, "{mode:?}");
        assert_matches_cold(
            &service,
            std::slice::from_ref(&saturating),
            &format!("{mode:?}, saturating reseed"),
        );
    }
}

// ------------------------------------------- 3. Tier-3 delete-reseed exact

#[test]
fn deletion_deltas_delete_reseed_and_stay_correct() {
    let graph = scale_free_graph(400);
    for mode in MODES {
        let service = GpsService::new(Engine::builder(graph.clone()).eval_mode(mode).build_core());
        let queries = warm_queries(&graph);
        warm(&service, &queries);

        // Remove an existing a0 edge (touching most query alphabets) and add
        // an a1 edge in the same batch: a mixed delta with a deletion.
        let (_, removed) = graph
            .edges()
            .find(|(_, e)| graph.labels().name(e.label).unwrap() == "a0")
            .expect("scale-free graph has a0 edges");
        let update = GraphUpdate::new()
            .remove_edge(
                graph.node_name(removed.source),
                "a0",
                graph.node_name(removed.target),
            )
            .add_edge(
                graph.node_name(removed.target),
                "a1",
                graph.node_name(removed.source),
            );
        let report = service.update(update).unwrap();
        assert_eq!(
            report.reseeded_answers, 0,
            "{mode:?}: a removal-bearing delta never takes the monotone insert-only path"
        );
        match mode {
            EvalMode::Naive => {
                assert_eq!(
                    report.delete_reseeded_answers, 0,
                    "Naive: no captured seed, no delete-reseed"
                );
                assert!(
                    report.recomputed_answers > 0,
                    "Naive: queries reading a0/a1 fall back to recomputation"
                );
            }
            _ => {
                assert!(
                    report.delete_reseeded_answers > 0,
                    "{mode:?}: touched seeds must take the delete-aware resume"
                );
                assert_eq!(
                    report.recomputed_answers, 0,
                    "{mode:?}: a tiny removal must stay under the saturation budget"
                );
            }
        }
        assert!(
            report.carried_answers > 0,
            "{mode:?}: queries not reading a0/a1 are still carried"
        );
        assert_matches_cold(&service, &queries, &format!("{mode:?}, after removal"));
    }
}

/// One random mixed publish against the *current* snapshot: a fresh node,
/// a couple of random `a0..a3` insertions, and `removals` random existing
/// `a0..a3` edges removed — every epoch both grows and shrinks the graph.
fn random_mixed_update(
    snapshot: &CsrGraph,
    rng: &mut StdRng,
    round: usize,
    removals: usize,
) -> GraphUpdate {
    let n = snapshot.node_count();
    let pick = |rng: &mut StdRng| {
        snapshot
            .node_name(NodeId::from(rng.gen_range(0..n)))
            .to_string()
    };
    let fresh = format!("mix{round}");
    let mut update =
        GraphUpdate::new()
            .add_node(fresh.clone())
            .add_edge(fresh.as_str(), "a1", pick(rng));
    for _ in 0..2 {
        let label = format!("a{}", rng.gen_range(0..4u32));
        update = update.add_edge(pick(rng), label, pick(rng));
    }
    let alphabet: Vec<Edge> = snapshot
        .edges_by_source()
        .map(|(_, edge)| edge)
        .filter(|edge| {
            snapshot
                .labels()
                .name(edge.label)
                .is_some_and(|name| name.starts_with('a'))
        })
        .collect();
    assert!(
        !alphabet.is_empty(),
        "round {round}: nothing left to remove"
    );
    for _ in 0..removals {
        let edge = &alphabet[rng.gen_range(0..alphabet.len())];
        update = update.remove_edge(
            snapshot.node_name(edge.source),
            snapshot.labels().name(edge.label).unwrap(),
            snapshot.node_name(edge.target),
        );
    }
    update
}

#[test]
fn chained_mixed_epochs_match_cold_evaluation_in_every_mode() {
    let graph = scale_free_graph(400);
    for mode in MODES {
        let service = GpsService::new(Engine::builder(graph.clone()).eval_mode(mode).build_core());
        let queries = warm_queries(&graph);
        warm(&service, &queries);
        let mut rng = StdRng::seed_from_u64(0x0D37_E7E5);
        let mut delete_reseeded = 0usize;
        for epoch in 1..=5u64 {
            let update = {
                let core = service.core();
                random_mixed_update(core.snapshot(), &mut rng, epoch as usize, 2)
            };
            let report = service.update(update).unwrap();
            assert_eq!(report.epoch, epoch, "{mode:?}");
            assert!(report.removed_edges > 0, "{mode:?}: every epoch removes");
            assert_eq!(
                report.carried_answers
                    + report.reseeded_answers
                    + report.delete_reseeded_answers
                    + report.recomputed_answers,
                queries.len(),
                "{mode:?}, epoch {epoch}: the migration split partitions the cache"
            );
            assert_eq!(
                report.reseeded_answers, 0,
                "{mode:?}, epoch {epoch}: mixed deltas never take the insert-only tier"
            );
            delete_reseeded += report.delete_reseeded_answers;
            // Every live answer — migrated through the delete-aware resume or
            // recomputed — must be byte-identical to a cold evaluation.
            assert_matches_cold(
                &service,
                &queries,
                &format!("{mode:?}, mixed epoch {epoch}"),
            );
            // Re-warm whatever fell out so the next epoch migrates a full
            // cache again.
            warm(&service, &queries);
        }
        match mode {
            EvalMode::Naive => assert_eq!(
                delete_reseeded, 0,
                "Naive: the delete-reseed path requires a captured seed"
            ),
            _ => assert!(
                delete_reseeded > 0,
                "{mode:?}: chained mixed epochs must exercise the delete-aware resume"
            ),
        }
    }
}

#[test]
fn zero_saturation_budget_disables_the_delete_path() {
    let graph = scale_free_graph(400);
    let service = GpsService::new(
        Engine::builder(graph.clone())
            .eval_mode(EvalMode::Frontier)
            .delete_reseed_saturation(0.0)
            .build_core(),
    );
    let queries = warm_queries(&graph);
    warm(&service, &queries);
    let mut rng = StdRng::seed_from_u64(0x0D15_AB7E);
    let update = {
        let core = service.core();
        random_mixed_update(core.snapshot(), &mut rng, 1, 2)
    };
    let report = service.update(update).unwrap();
    assert_eq!(
        report.delete_reseeded_answers, 0,
        "budget 0.0: the first over-deleted configuration forces the fallback"
    );
    assert!(
        report.recomputed_answers > 0,
        "touched entries recompute cold instead"
    );
    assert_matches_cold(&service, &queries, "zero saturation budget");
}
