//! Cross-crate integration tests for the interactive loop's convergence
//! behaviour: the informative-paths strategy converges with few interactions,
//! all strategies converge eventually, pruning monotonically shrinks the
//! candidate set, and the learner recovers goal queries from characteristic
//! samples on every workload family.

use gps_datasets::{Workload, WorkloadKind};
use gps_interactive::session::{Session, SessionConfig};
use gps_interactive::strategy::{InformativePathsStrategy, RandomStrategy, Strategy};
use gps_interactive::user::SimulatedUser;
use gps_learner::characteristic::characteristic_sample;
use gps_learner::Learner;
use gps_rpq::PathQuery;

fn run(
    graph: &gps_graph::Graph,
    goal: &PathQuery,
    strategy: &mut dyn Strategy,
) -> gps_interactive::session::SessionOutcome {
    let mut user = SimulatedUser::new(goal.clone(), graph);
    let mut session = Session::new(graph, SessionConfig::default());
    session.run(strategy, &mut user)
}

#[test]
fn informative_strategy_converges_on_every_workload_family() {
    for workload in Workload::default_suite(17) {
        // Pick the first satisfiable goal query of the workload.
        let goal = workload
            .queries
            .queries
            .iter()
            .find(|q| !q.evaluate(&workload.graph).is_empty());
        let Some(goal) = goal else { continue };
        let outcome = run(
            &workload.graph,
            goal,
            &mut InformativePathsStrategy::default(),
        );
        assert!(
            outcome.halt_reason.is_convergence(),
            "{}: halted with {:?}",
            workload.name,
            outcome.halt_reason
        );
        let learned = outcome.learned.expect("a query is learned");
        // The learned query is consistent with every label given.
        for positive in outcome.examples.positives() {
            assert!(learned.answer.contains(positive), "{}", workload.name);
        }
        for negative in outcome.examples.negatives() {
            assert!(!learned.answer.contains(negative), "{}", workload.name);
        }
        // Interactions stay well below the graph size (the whole point of the
        // system).
        assert!(
            outcome.stats.interactions <= workload.graph.node_count(),
            "{}",
            workload.name
        );
    }
}

#[test]
fn informative_strategy_needs_no_more_interactions_than_random_on_figure1() {
    let workload = Workload::figure1();
    let goal = PathQuery::parse("(tram+bus)*.cinema", workload.graph.labels()).unwrap();
    let informative = run(
        &workload.graph,
        &goal,
        &mut InformativePathsStrategy::default(),
    );
    // Average random over a few seeds to smooth out luck.
    let mut random_total = 0usize;
    let seeds = [1u64, 2, 3, 4, 5];
    for seed in seeds {
        random_total += run(&workload.graph, &goal, &mut RandomStrategy::seeded(seed))
            .stats
            .interactions;
    }
    let random_mean = random_total as f64 / seeds.len() as f64;
    assert!(
        (informative.stats.interactions as f64) <= random_mean + 0.5,
        "informative {} vs random mean {random_mean}",
        informative.stats.interactions
    );
}

#[test]
fn pruning_counters_are_monotone_and_end_high() {
    let workload = Workload::transport(40, 9);
    let goal = PathQuery::parse("(tram+bus)*.cinema", workload.graph.labels()).unwrap();
    let outcome = run(
        &workload.graph,
        &goal,
        &mut InformativePathsStrategy::default(),
    );
    let pruned = &outcome.stats.pruned_after_interaction;
    assert!(!pruned.is_empty());
    for window in pruned.windows(2) {
        assert!(window[0] <= window[1], "pruning never un-prunes");
    }
    // Facility sinks alone are a sizable pruned fraction from the start.
    assert!(pruned[0] > 0);
}

#[test]
fn characteristic_samples_recover_goal_behaviour_on_all_families() {
    for workload in Workload::default_suite(23) {
        // Use a cheap goal per family to keep the test fast.
        let goal = workload.queries.queries.iter().find(|q| {
            let n = q.evaluate(&workload.graph).len();
            n > 0 && n < workload.graph.node_count()
        });
        let Some(goal) = goal else { continue };
        // Scale-free and synthetic graphs can be dense; skip the largest to
        // keep CI fast while still covering the family.
        if workload.kind == WorkloadKind::ScaleFree && workload.graph.edge_count() > 400 {
            continue;
        }
        let sample = characteristic_sample(&workload.graph, goal);
        let learned = Learner::default()
            .learn(&workload.graph, &sample)
            .unwrap_or_else(|e| panic!("{}: {e}", workload.name));
        assert_eq!(
            learned.answer.nodes(),
            goal.evaluate(&workload.graph).nodes(),
            "{}: learned {:?}",
            workload.name,
            learned.regex
        );
    }
}

#[test]
fn session_transcript_lengths_match_interaction_counts() {
    let workload = Workload::transport(25, 4);
    let goal = PathQuery::parse("cinema", workload.graph.labels()).unwrap();
    let outcome = run(
        &workload.graph,
        &goal,
        &mut InformativePathsStrategy::default(),
    );
    assert_eq!(outcome.transcript.len(), outcome.stats.interactions);
    assert_eq!(
        outcome.stats.positive_labels + outcome.stats.negative_labels,
        outcome.stats.interactions
    );
}
