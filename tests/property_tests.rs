//! Property-based tests over the core data structures and invariants, driven
//! by seeded random generators (deterministic across runs).  These cover the
//! algebra the whole system rests on:
//!
//! * regex printing/parsing round trips;
//! * DFA construction agrees with a reference regex matcher on random words;
//! * minimization preserves the language and never grows the automaton;
//! * PTA accepts exactly its sample;
//! * graph path enumeration and RPQ evaluation agree (a node is selected iff
//!   one of its bounded words is accepted, for finite-language queries);
//! * the learner's output is always consistent with its examples.

use gps_automata::{decide, parser, printer, Dfa, Regex};
use gps_graph::{Graph, LabelId, LabelInterner, PathEnumerator};
use gps_learner::{ExampleSet, Learner};
use gps_rpq::eval;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

// ---------------------------------------------------------------- generators

/// A small fixed alphabet: labels 0..4 named a..d.
fn interner() -> LabelInterner {
    let mut interner = LabelInterner::new();
    for name in ["a", "b", "c", "d"] {
        interner.intern(name);
    }
    interner
}

fn arb_label(rng: &mut StdRng) -> LabelId {
    LabelId::new(rng.gen_range(0u32..4))
}

fn arb_word(rng: &mut StdRng, max_len: usize) -> Vec<LabelId> {
    let len = rng.gen_range(0..=max_len);
    (0..len).map(|_| arb_label(rng)).collect()
}

fn arb_regex(rng: &mut StdRng, depth: usize) -> Regex {
    let choice = if depth == 0 {
        rng.gen_range(0..3)
    } else {
        rng.gen_range(0..6)
    };
    match choice {
        0 => Regex::Epsilon,
        1 => Regex::symbol(arb_label(rng)),
        2 => Regex::Empty,
        3 => Regex::concat((0..rng.gen_range(2..4usize)).map(|_| arb_regex(rng, depth - 1))),
        4 => Regex::union((0..rng.gen_range(2..4usize)).map(|_| arb_regex(rng, depth - 1))),
        _ => Regex::star(arb_regex(rng, depth - 1)),
    }
}

/// A small random edge-labeled graph over at most `max_nodes` nodes.
fn arb_graph(rng: &mut StdRng, max_nodes: usize, max_edges: usize) -> Graph {
    let n = rng.gen_range(1..=max_nodes.max(1));
    let mut g = Graph::new();
    for name in ["a", "b", "c", "d"] {
        g.label(name);
    }
    let ids = g.add_nodes("v", n);
    let edges = rng.gen_range(0..=max_edges);
    for _ in 0..edges {
        let s = ids[rng.gen_range(0..n)];
        let t = ids[rng.gen_range(0..n)];
        let l = LabelId::new(rng.gen_range(0u32..4));
        g.add_edge(s, l, t);
    }
    g
}

/// Reference matcher: does `regex` accept `word`?  Implemented directly over
/// the AST by recursive decomposition, independent of the automata code.
fn reference_accepts(regex: &Regex, word: &[LabelId]) -> bool {
    match regex {
        Regex::Empty => false,
        Regex::Epsilon => word.is_empty(),
        Regex::Symbol(l) => word.len() == 1 && word[0] == *l,
        Regex::Union(parts) => parts.iter().any(|p| reference_accepts(p, word)),
        Regex::Concat(parts) => {
            fn concat_match(parts: &[Regex], word: &[LabelId]) -> bool {
                match parts {
                    [] => word.is_empty(),
                    [first, rest @ ..] => (0..=word.len()).any(|split| {
                        reference_accepts(first, &word[..split])
                            && concat_match(rest, &word[split..])
                    }),
                }
            }
            concat_match(parts, word)
        }
        Regex::Star(inner) => {
            if word.is_empty() {
                return true;
            }
            // Try every non-empty prefix accepted by the inner expression.
            (1..=word.len()).any(|split| {
                reference_accepts(inner, &word[..split]) && reference_accepts(regex, &word[split..])
            })
        }
    }
}

// ------------------------------------------------------------------ automata

#[test]
fn print_parse_round_trip() {
    let labels = interner();
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..64 {
        let regex = arb_regex(&mut rng, 3);
        let printed = printer::print(&regex, &labels);
        let reparsed = parser::parse(&printed, &labels).unwrap();
        assert_eq!(regex, reparsed, "printed: {printed}");
    }
}

#[test]
fn dfa_agrees_with_reference_matcher() {
    let mut rng = StdRng::seed_from_u64(102);
    for _ in 0..64 {
        let regex = arb_regex(&mut rng, 3);
        let word = arb_word(&mut rng, 6);
        let dfa = Dfa::from_regex(&regex);
        assert_eq!(
            dfa.accepts(&word),
            reference_accepts(&regex, &word),
            "regex {regex:?}, word {word:?}"
        );
    }
}

#[test]
fn minimization_preserves_language_and_never_grows() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..64 {
        let regex = arb_regex(&mut rng, 3);
        let word = arb_word(&mut rng, 6);
        let raw = Dfa::from_nfa(&gps_automata::Nfa::from_regex(&regex));
        let minimal = gps_automata::minimize::minimize(&raw);
        assert!(minimal.state_count() <= raw.state_count().max(1));
        assert_eq!(minimal.accepts(&word), raw.accepts(&word));
    }
}

#[test]
fn state_elimination_round_trips() {
    let mut rng = StdRng::seed_from_u64(104);
    for _ in 0..64 {
        let regex = arb_regex(&mut rng, 3);
        let dfa = Dfa::from_regex(&regex);
        let back = gps_automata::state_elim::dfa_to_regex(&dfa);
        assert!(
            decide::regex_equivalent(&regex, &back),
            "regex {regex:?} round-tripped to {back:?}"
        );
    }
}

#[test]
fn pta_accepts_exactly_its_sample() {
    let mut rng = StdRng::seed_from_u64(105);
    for _ in 0..64 {
        let words: Vec<Vec<LabelId>> = (0..rng.gen_range(0..6usize))
            .map(|_| arb_word(&mut rng, 5))
            .collect();
        let probe = arb_word(&mut rng, 5);
        let pta = gps_automata::pta::build_pta(&words);
        assert_eq!(pta.accepts(&probe), words.contains(&probe));
    }
}

// --------------------------------------------------------------------- graph

#[test]
fn csr_matches_adjacency() {
    let mut rng = StdRng::seed_from_u64(106);
    for _ in 0..48 {
        let graph = arb_graph(&mut rng, 8, 16);
        let csr = gps_graph::CsrGraph::from_graph(&graph);
        assert_eq!(csr.node_count(), graph.node_count());
        assert_eq!(csr.edge_count(), graph.edge_count());
        for node in graph.nodes() {
            assert_eq!(csr.out_degree(node), graph.out_degree(node));
            assert_eq!(csr.in_degree(node), graph.in_degree(node));
        }
    }
}

#[test]
fn edge_list_round_trip() {
    let mut rng = StdRng::seed_from_u64(107);
    for _ in 0..48 {
        let graph = arb_graph(&mut rng, 8, 16);
        let text = gps_graph::io::to_edge_list(&graph);
        let reloaded = gps_graph::io::parse_edge_list(&text).unwrap();
        assert_eq!(reloaded.node_count(), graph.node_count());
        assert_eq!(reloaded.edge_count(), graph.edge_count());
    }
}

#[test]
fn bounded_words_have_bounded_length() {
    let mut rng = StdRng::seed_from_u64(108);
    for _ in 0..48 {
        let graph = arb_graph(&mut rng, 6, 12);
        let bound = rng.gen_range(0usize..4);
        for node in graph.nodes() {
            for word in PathEnumerator::new(bound)
                .with_max_paths(500)
                .words_from(&graph, node)
            {
                assert!(!word.is_empty() && word.len() <= bound);
            }
        }
    }
}

// ----------------------------------------------------------------------- rpq

/// For *finite-language* queries (plain words), a node is selected iff the
/// word is one of its bounded path words.
#[test]
fn evaluation_agrees_with_path_enumeration() {
    let mut rng = StdRng::seed_from_u64(109);
    let mut cases = 0;
    while cases < 32 {
        let graph = arb_graph(&mut rng, 6, 12);
        let word = arb_word(&mut rng, 3);
        if word.is_empty() {
            continue;
        }
        cases += 1;
        let dfa = Dfa::from_regex(&Regex::word(&word));
        let answer = eval::evaluate(&graph, &dfa);
        let enumerator = PathEnumerator::new(word.len()).with_max_paths(2000);
        for node in graph.nodes() {
            let words = enumerator.words_from(&graph, node);
            assert_eq!(answer.contains(node), words.contains(&word));
        }
    }
}

// ------------------------------------------------------------------- learner

/// Whatever the labeling, a successfully learned query is consistent with
/// the examples it was learned from.
#[test]
fn learner_output_is_consistent() {
    let mut rng = StdRng::seed_from_u64(110);
    for _ in 0..24 {
        let graph = arb_graph(&mut rng, 7, 14);
        let mut examples = ExampleSet::new();
        for i in 0..graph.node_count() {
            let node = gps_graph::NodeId::from(i);
            match rng.gen_range(0..3u32) {
                0 => {
                    examples.add_positive(node);
                }
                1 => {
                    examples.add_negative(node);
                }
                _ => {}
            }
        }
        if let Ok(learned) = Learner::with_bound(3).learn(&graph, &examples) {
            for positive in examples.positives() {
                assert!(learned.answer.contains(positive));
            }
            for negative in examples.negatives() {
                assert!(!learned.answer.contains(negative));
            }
        }
    }
}
