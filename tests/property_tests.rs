//! Property-based tests over the core data structures and invariants, using
//! proptest.  These cover the algebra the whole system rests on:
//!
//! * regex printing/parsing round trips;
//! * DFA construction agrees with a reference regex matcher on random words;
//! * minimization preserves the language and never grows the automaton;
//! * PTA accepts exactly its sample;
//! * graph path enumeration and RPQ evaluation agree (a node is selected iff
//!   one of its bounded words is accepted, for finite-language queries);
//! * the learner's output is always consistent with its examples.

use gps_automata::{decide, parser, printer, Dfa, Regex};
use gps_graph::{Graph, LabelId, LabelInterner, PathEnumerator};
use gps_learner::{ExampleSet, Learner};
use gps_rpq::eval;
use proptest::prelude::*;

// ---------------------------------------------------------------- generators

/// A small fixed alphabet: labels 0..4 named a..d.
fn interner() -> LabelInterner {
    let mut interner = LabelInterner::new();
    for name in ["a", "b", "c", "d"] {
        interner.intern(name);
    }
    interner
}

fn arb_label() -> impl Strategy<Value = LabelId> {
    (0u32..4).prop_map(LabelId::new)
}

fn arb_word(max_len: usize) -> impl Strategy<Value = Vec<LabelId>> {
    prop::collection::vec(arb_label(), 0..=max_len)
}

fn arb_regex() -> impl Strategy<Value = Regex> {
    let leaf = prop_oneof![
        Just(Regex::Epsilon),
        arb_label().prop_map(Regex::symbol),
        Just(Regex::Empty),
    ];
    leaf.prop_recursive(3, 24, 3, |inner| {
        prop_oneof![
            prop::collection::vec(inner.clone(), 2..=3).prop_map(Regex::concat),
            prop::collection::vec(inner.clone(), 2..=3).prop_map(Regex::union),
            inner.prop_map(Regex::star),
        ]
    })
}

/// A small random edge-labeled graph described by an edge list over at most
/// `n` nodes.
fn arb_graph(max_nodes: usize, max_edges: usize) -> impl Strategy<Value = Graph> {
    let nodes = 1..=max_nodes;
    nodes.prop_flat_map(move |n| {
        prop::collection::vec((0..n, 0u32..4, 0..n), 0..=max_edges).prop_map(move |edges| {
            let mut g = Graph::new();
            for name in ["a", "b", "c", "d"] {
                g.label(name);
            }
            let ids = g.add_nodes("v", n);
            for (s, l, t) in edges {
                g.add_edge(ids[s], LabelId::new(l), ids[t]);
            }
            g
        })
    })
}

/// Reference matcher: does `regex` accept `word`?  Implemented directly over
/// the AST by recursive decomposition, independent of the automata code.
fn reference_accepts(regex: &Regex, word: &[LabelId]) -> bool {
    match regex {
        Regex::Empty => false,
        Regex::Epsilon => word.is_empty(),
        Regex::Symbol(l) => word.len() == 1 && word[0] == *l,
        Regex::Union(parts) => parts.iter().any(|p| reference_accepts(p, word)),
        Regex::Concat(parts) => {
            fn concat_match(parts: &[Regex], word: &[LabelId]) -> bool {
                match parts {
                    [] => word.is_empty(),
                    [first, rest @ ..] => (0..=word.len()).any(|split| {
                        reference_accepts(first, &word[..split]) && concat_match(rest, &word[split..])
                    }),
                }
            }
            concat_match(parts, word)
        }
        Regex::Star(inner) => {
            if word.is_empty() {
                return true;
            }
            // Try every non-empty prefix accepted by the inner expression.
            (1..=word.len()).any(|split| {
                reference_accepts(inner, &word[..split])
                    && reference_accepts(regex, &word[split..])
            })
        }
    }
}

// ------------------------------------------------------------------ automata

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_round_trip(regex in arb_regex()) {
        let labels = interner();
        let printed = printer::print(&regex, &labels);
        let reparsed = parser::parse(&printed, &labels).unwrap();
        prop_assert_eq!(regex, reparsed);
    }

    #[test]
    fn dfa_agrees_with_reference_matcher(regex in arb_regex(), word in arb_word(6)) {
        let dfa = Dfa::from_regex(&regex);
        prop_assert_eq!(dfa.accepts(&word), reference_accepts(&regex, &word));
    }

    #[test]
    fn minimization_preserves_language_and_never_grows(regex in arb_regex(), word in arb_word(6)) {
        let raw = Dfa::from_nfa(&gps_automata::Nfa::from_regex(&regex));
        let minimal = gps_automata::minimize::minimize(&raw);
        prop_assert!(minimal.state_count() <= raw.state_count().max(1));
        prop_assert_eq!(minimal.accepts(&word), raw.accepts(&word));
    }

    #[test]
    fn state_elimination_round_trips(regex in arb_regex()) {
        let dfa = Dfa::from_regex(&regex);
        let back = gps_automata::state_elim::dfa_to_regex(&dfa);
        prop_assert!(decide::regex_equivalent(&regex, &back));
    }

    #[test]
    fn pta_accepts_exactly_its_sample(words in prop::collection::vec(arb_word(5), 0..6), probe in arb_word(5)) {
        let pta = gps_automata::pta::build_pta(&words);
        let expected = words.contains(&probe);
        prop_assert_eq!(pta.accepts(&probe), expected);
    }
}

// --------------------------------------------------------------------- graph

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn csr_matches_adjacency(graph in arb_graph(8, 16)) {
        let csr = gps_graph::CsrGraph::from_graph(&graph);
        prop_assert_eq!(csr.node_count(), graph.node_count());
        prop_assert_eq!(csr.edge_count(), graph.edge_count());
        for node in graph.nodes() {
            prop_assert_eq!(csr.out_degree(node), graph.out_degree(node));
            prop_assert_eq!(csr.in_degree(node), graph.in_degree(node));
        }
    }

    #[test]
    fn edge_list_round_trip(graph in arb_graph(8, 16)) {
        let text = gps_graph::io::to_edge_list(&graph);
        let reloaded = gps_graph::io::parse_edge_list(&text).unwrap();
        prop_assert_eq!(reloaded.node_count(), graph.node_count());
        prop_assert_eq!(reloaded.edge_count(), graph.edge_count());
    }

    #[test]
    fn bounded_words_have_bounded_length(graph in arb_graph(6, 12), bound in 0usize..4) {
        for node in graph.nodes() {
            for word in PathEnumerator::new(bound).with_max_paths(500).words_from(&graph, node) {
                prop_assert!(!word.is_empty() && word.len() <= bound);
            }
        }
    }
}

// ----------------------------------------------------------------------- rpq

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// For *finite-language* queries (plain words), a node is selected iff the
    /// word is one of its bounded path words.
    #[test]
    fn evaluation_agrees_with_path_enumeration(graph in arb_graph(6, 12), word in arb_word(3)) {
        prop_assume!(!word.is_empty());
        let dfa = Dfa::from_regex(&Regex::word(&word));
        let answer = eval::evaluate(&graph, &dfa);
        let enumerator = PathEnumerator::new(word.len()).with_max_paths(2000);
        for node in graph.nodes() {
            let words = enumerator.words_from(&graph, node);
            prop_assert_eq!(answer.contains(node), words.contains(&word));
        }
    }
}

// ------------------------------------------------------------------- learner

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Whatever the labeling, a successfully learned query is consistent with
    /// the examples it was learned from.
    #[test]
    fn learner_output_is_consistent(graph in arb_graph(7, 14), flags in prop::collection::vec(prop::option::of(any::<bool>()), 7)) {
        let mut examples = ExampleSet::new();
        for (i, flag) in flags.iter().enumerate() {
            if i >= graph.node_count() {
                break;
            }
            let node = gps_graph::NodeId::from(i);
            match flag {
                Some(true) => { examples.add_positive(node); }
                Some(false) => { examples.add_negative(node); }
                None => {}
            }
        }
        if let Ok(learned) = Learner::with_bound(3).learn(&graph, &examples) {
            for positive in examples.positives() {
                prop_assert!(learned.answer.contains(positive));
            }
            for negative in examples.negatives() {
                prop_assert!(!learned.answer.contains(negative));
            }
        }
    }
}
