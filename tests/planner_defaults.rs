//! Planner-threshold calibration check on the large (~20k node) scale-free
//! corpus: the default thresholds (0.4 / 0.9 coverage, mean degree ≥ 4) must
//! exercise *all three* plans on a corpus this size — rare labels push,
//! blanket star queries pull, mid-coverage queries go hybrid — and the
//! chosen plans must never change answers.  This is the calibration the
//! ROADMAP asked for once a larger workload landed; the thresholds are now
//! builder knobs (`GpsBuilder::planner_config`), so a corpus where these
//! defaults misfire can override them without forking the planner.

use gps_automata::{Dfa, Regex};
use gps_core::{Engine, EvalMode};
use gps_datasets::Workload;
use gps_exec::{planner, BatchEvaluator, Plan, PlannerConfig};
use gps_graph::LabelStats;

#[test]
fn default_thresholds_cover_all_three_plans_on_the_large_corpus() {
    let workload = Workload::scale_free_large(7);
    let graph = &workload.graph;
    assert_eq!(graph.node_count(), 20_000);
    assert!(graph.edge_count() > 60_000, "dense enough to matter");
    let stats = LabelStats::compute(graph);

    // Labels are Zipf-skewed: a0 dominates, a5 is rare.
    let label = |name: &str| graph.label_id(name).unwrap();
    let rare = planner::plan(&stats, &Dfa::from_regex(&Regex::symbol(label("a5"))));
    assert_eq!(rare.plan, Plan::Reverse, "rare labels stay in push mode");
    assert!(rare.coverage < 0.4, "coverage {:.3}", rare.coverage);

    let blanket = Regex::star(Regex::union(
        (0..6).map(|i| Regex::symbol(label(&format!("a{i}")))),
    ));
    let all = planner::plan(&stats, &Dfa::from_regex(&blanket));
    assert_eq!(all.plan, Plan::Forward, "blanket star queries pull");
    assert!(all.coverage > 0.9 && all.mean_degree >= 4.0);

    let mid = planner::plan(&stats, &Dfa::from_regex(&Regex::symbol(label("a0"))));
    assert_eq!(
        mid.plan,
        Plan::Bidirectional,
        "the dominant label alone sits between the thresholds (coverage {:.3})",
        mid.coverage
    );
}

#[test]
fn planner_chosen_plans_match_forced_plans_on_the_large_corpus() {
    // Answers are plan-independent; the planner only picks the cheapest.
    let workload = Workload::scale_free_large(7);
    let evaluator = BatchEvaluator::new(&workload.graph);
    let label = |name: &str| workload.graph.label_id(name).unwrap();
    let queries = [
        Regex::symbol(label("a5")),
        Regex::concat([Regex::symbol(label("a1")), Regex::symbol(label("a2"))]),
        Regex::star(Regex::symbol(label("a0"))),
    ];
    for regex in &queries {
        let dfa = Dfa::from_regex(regex);
        let chosen = evaluator.evaluate(&dfa);
        for plan in [Plan::Reverse, Plan::Forward, Plan::Bidirectional] {
            let forced = evaluator.clone().with_plan(plan).evaluate(&dfa);
            assert_eq!(chosen, forced, "{plan:?}");
        }
    }
}

#[test]
fn builder_planner_knob_reaches_the_frontier_evaluator() {
    let (graph, _) = gps_datasets::figure1::figure1_graph();
    let custom = PlannerConfig {
        push_coverage: 0.2,
        pull_coverage: 0.95,
        pull_mean_degree: 2.0,
    };
    let engine = Engine::builder(graph)
        .eval_mode(EvalMode::Frontier)
        .planner_config(custom)
        .build_csr();
    assert_eq!(engine.core().planner_config(), custom);
    assert_eq!(
        Engine::builder(gps_datasets::figure1::figure1_graph().0)
            .build()
            .core()
            .planner_config(),
        PlannerConfig::default(),
        "defaults unchanged when the knob is untouched"
    );
}
