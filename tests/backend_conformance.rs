//! Backend-conformance suite: the mutable adjacency [`Graph`] and the
//! immutable [`CsrGraph`] snapshot must be observationally equivalent
//! through the [`GraphBackend`] trait.
//!
//! Property tests over generated graphs (random edge-lists, transport
//! networks, scale-free and biological graphs) assert that the two backends
//! produce identical:
//!
//! * RPQ answers, for every query of the standard workloads and for random
//!   word queries;
//! * neighborhoods (node sets, distance rings, edge id sets, continuation
//!   markers) and zoom deltas;
//! * bounded path enumerations (words and witness paths);
//! * traversals, degrees, statistics and witness extraction;
//! * full interactive sessions against the same simulated user.

use gps_core::prelude::*;
use gps_datasets::biological::{self, BiologicalConfig};
use gps_datasets::queries;
use gps_datasets::scale_free::{self, ScaleFreeConfig};
use gps_datasets::synthetic::{self, SyntheticConfig};
use gps_datasets::transport::{self, TransportConfig};
use gps_graph::stats::GraphStats;
use gps_graph::traversal::{self, Direction};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small random multigraph over a 4-letter alphabet.
fn random_graph(rng: &mut StdRng, max_nodes: usize, max_edges: usize) -> Graph {
    let n = rng.gen_range(1..=max_nodes);
    let mut g = Graph::new();
    for name in ["a", "b", "c", "d"] {
        g.label(name);
    }
    let ids = g.add_nodes("v", n);
    for _ in 0..rng.gen_range(0..=max_edges) {
        let s = ids[rng.gen_range(0..n)];
        let t = ids[rng.gen_range(0..n)];
        g.add_edge(s, LabelId::new(rng.gen_range(0u32..4)), t);
    }
    g
}

/// The generated corpus the conformance properties run over.
fn corpus() -> Vec<(String, Graph)> {
    let mut graphs = Vec::new();
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    for i in 0..12 {
        graphs.push((format!("random-{i}"), random_graph(&mut rng, 10, 24)));
    }
    graphs.push((
        "transport".to_string(),
        transport::generate(&TransportConfig::with_neighborhoods(25, 7)).graph,
    ));
    graphs.push((
        "scale-free".to_string(),
        scale_free::generate(&ScaleFreeConfig {
            nodes: 60,
            seed: 11,
            ..ScaleFreeConfig::default()
        }),
    ));
    graphs.push((
        "biological".to_string(),
        biological::generate(&BiologicalConfig::with_entities(40, 3)),
    ));
    graphs
}

/// Structural equivalence: counts, names, degrees, adjacency.
fn assert_structurally_equal(name: &str, graph: &Graph, csr: &CsrGraph) {
    assert_eq!(graph.node_count(), csr.node_count(), "{name}: node count");
    assert_eq!(graph.edge_count(), csr.edge_count(), "{name}: edge count");
    assert_eq!(graph.label_count(), csr.label_count(), "{name}: labels");
    for node in graph.nodes() {
        assert_eq!(
            graph.node_name(node),
            csr.node_name(node),
            "{name}: name of {node}"
        );
        assert_eq!(graph.out_degree(node), csr.out_degree(node));
        assert_eq!(graph.in_degree(node), csr.in_degree(node));
        let g_succ: Vec<(LabelId, NodeId)> = graph.successors(node).collect();
        let c_succ: Vec<(LabelId, NodeId)> = GraphBackend::successors(csr, node).collect();
        assert_eq!(g_succ, c_succ, "{name}: successors of {node}");
        let mut g_pred: Vec<(LabelId, NodeId)> = graph.predecessors(node).collect();
        let mut c_pred: Vec<(LabelId, NodeId)> = GraphBackend::predecessors(csr, node).collect();
        g_pred.sort();
        c_pred.sort();
        assert_eq!(g_pred, c_pred, "{name}: predecessors of {node}");
    }
}

#[test]
fn backends_are_structurally_equivalent() {
    for (name, graph) in corpus() {
        let csr = CsrGraph::from_graph(&graph);
        assert_structurally_equal(&name, &graph, &csr);
    }
}

#[test]
fn rpq_answers_agree_on_workload_queries() {
    // Standard workloads per family, evaluated on both backends.
    for (name, graph) in corpus() {
        let csr = CsrGraph::from_graph(&graph);
        for query in &queries::standard_workload(&graph).queries {
            assert_eq!(
                query.evaluate(&graph).nodes(),
                query.evaluate(&csr).nodes(),
                "{name}: query {} disagrees",
                query.display(graph.labels())
            );
        }
    }
}

#[test]
fn rpq_answers_agree_on_random_word_queries() {
    let mut rng = StdRng::seed_from_u64(0xBAC0BEEF);
    for (name, graph) in corpus() {
        if graph.label_count() == 0 {
            continue;
        }
        let csr = CsrGraph::from_graph(&graph);
        for _ in 0..8 {
            let len = rng.gen_range(1..=4usize);
            let word: Vec<LabelId> = (0..len)
                .map(|_| LabelId::new(rng.gen_range(0..graph.label_count() as u32)))
                .collect();
            let query = PathQuery::new(gps_automata::Regex::word(&word));
            let graph_answer = query.evaluate(&graph);
            let csr_answer = query.evaluate(&csr);
            assert_eq!(
                graph_answer.nodes(),
                csr_answer.nodes(),
                "{name}: word query {word:?} disagrees"
            );
            // Witnesses must exist on both backends for exactly the answer.
            for node in graph_answer.nodes() {
                assert!(query.witness(&graph, node).is_some());
                assert!(query.witness(&csr, node).is_some());
            }
        }
    }
}

#[test]
fn neighborhoods_and_zoom_deltas_agree() {
    for (name, graph) in corpus() {
        let csr = CsrGraph::from_graph(&graph);
        for node in graph.nodes().step_by(3) {
            for radius in [0u32, 1, 2, 3] {
                let g_hood = Neighborhood::extract(&graph, node, radius);
                let c_hood = Neighborhood::extract(&csr, node, radius);
                assert_eq!(g_hood.nodes(), c_hood.nodes(), "{name}: nodes@r{radius}");
                assert_eq!(g_hood.edges(), c_hood.edges(), "{name}: edges@r{radius}");
                assert_eq!(
                    g_hood.continuations(),
                    c_hood.continuations(),
                    "{name}: continuations@r{radius}"
                );
                let (g_larger, g_delta) = g_hood.zoom_out(&graph);
                let (c_larger, c_delta) = c_hood.zoom_out(&csr);
                assert_eq!(g_larger.node_ids(), c_larger.node_ids());
                assert_eq!(g_delta, c_delta, "{name}: zoom delta@r{radius}");
            }
        }
    }
}

#[test]
fn path_enumerations_agree() {
    for (name, graph) in corpus() {
        let csr = CsrGraph::from_graph(&graph);
        let enumerator = PathEnumerator::new(3).with_max_paths(5_000);
        for node in graph.nodes().step_by(2) {
            assert_eq!(
                enumerator.words_from(&graph, node),
                enumerator.words_from(&csr, node),
                "{name}: words of {node}"
            );
            assert_eq!(
                enumerator.paths_from(&graph, node),
                enumerator.paths_from(&csr, node),
                "{name}: paths of {node}"
            );
        }
    }
}

#[test]
fn traversals_and_stats_agree() {
    for (name, graph) in corpus() {
        let csr = CsrGraph::from_graph(&graph);
        let g_stats = GraphStats::compute(&graph);
        let c_stats = GraphStats::compute(&csr);
        assert_eq!(g_stats, c_stats, "{name}: stats");
        for node in graph.nodes().step_by(4) {
            for direction in [Direction::Forward, Direction::Backward, Direction::Both] {
                let g_bfs = traversal::bfs(&graph, node, Some(3), direction);
                let c_bfs = traversal::bfs(&csr, node, Some(3), direction);
                let g_pairs: Vec<(NodeId, u32)> = g_bfs.reachable().collect();
                let c_pairs: Vec<(NodeId, u32)> = c_bfs.reachable().collect();
                assert_eq!(g_pairs, c_pairs, "{name}: bfs from {node}");
            }
        }
        assert_eq!(
            traversal::weakly_connected_components(&graph),
            traversal::weakly_connected_components(&csr),
            "{name}: components"
        );
    }
}

#[test]
fn negative_coverage_and_pruning_agree() {
    for (name, graph) in corpus() {
        if graph.node_count() < 2 {
            continue;
        }
        let csr = CsrGraph::from_graph(&graph);
        let negatives: Vec<NodeId> = graph.nodes().step_by(2).collect();
        let g_cov = NegativeCoverage::from_negatives(&graph, negatives.iter().copied(), 3);
        let c_cov = NegativeCoverage::from_negatives(&csr, negatives.iter().copied(), 3);
        for node in graph.nodes() {
            assert_eq!(
                g_cov.uncovered_count(&graph, node),
                c_cov.uncovered_count(&csr, node),
                "{name}: uncovered count of {node}"
            );
            assert_eq!(
                g_cov.is_uninformative(&graph, node),
                c_cov.is_uninformative(&csr, node),
                "{name}: informativeness of {node}"
            );
        }
    }
}

#[test]
fn interactive_sessions_agree_end_to_end() {
    // The same goal query, strategy and simulated user must drive identical
    // sessions on both backends: same transcript, same learned answer.
    let net = transport::generate(&TransportConfig::with_neighborhoods(12, 5));
    let graph = net.graph;
    let csr = CsrGraph::from_graph(&graph);
    let goal = match PathQuery::parse("(tram+bus)*.cinema", graph.labels()) {
        Ok(goal) => goal,
        Err(_) => return, // tiny networks may lack a label; not this seed
    };

    let mut graph_user = SimulatedUser::new(goal.clone(), &graph);
    let mut graph_session = Session::new(&graph, SessionConfig::default());
    let graph_outcome =
        graph_session.run(&mut InformativePathsStrategy::default(), &mut graph_user);

    let mut csr_user = SimulatedUser::new(goal.clone(), &csr);
    let mut csr_session: Session<'_, CsrGraph> = Session::new(&csr, SessionConfig::default());
    let csr_outcome = csr_session.run(&mut InformativePathsStrategy::default(), &mut csr_user);

    assert_eq!(graph_outcome.halt_reason, csr_outcome.halt_reason);
    assert_eq!(
        graph_outcome.stats.interactions,
        csr_outcome.stats.interactions
    );
    let graph_nodes: Vec<NodeId> = graph_outcome.transcript.iter().map(|r| r.node).collect();
    let csr_nodes: Vec<NodeId> = csr_outcome.transcript.iter().map(|r| r.node).collect();
    assert_eq!(graph_nodes, csr_nodes, "same nodes proposed in same order");
    assert_eq!(
        graph_outcome.learned.map(|l| l.answer.nodes()),
        csr_outcome.learned.map(|l| l.answer.nodes())
    );
}

#[test]
fn engine_facade_agrees_across_backends_on_every_dataset() {
    for (name, graph) in corpus() {
        let adjacency = Engine::builder(graph.clone()).build();
        let csr = Engine::builder(graph.clone()).build_csr();
        for query in &queries::standard_workload(&graph).queries {
            let syntax = query.display(graph.labels());
            assert_eq!(
                adjacency.evaluate(&syntax).unwrap().nodes(),
                csr.evaluate(&syntax).unwrap().nodes(),
                "{name}: engine disagreement on {syntax}"
            );
        }
    }
}

#[test]
fn double_snapshot_is_a_fixed_point() {
    for (name, graph) in corpus() {
        let once = CsrGraph::from_graph(&graph);
        let twice = CsrGraph::from_backend(&once);
        assert_structurally_equal(&name, &graph, &twice);
    }
}

#[test]
fn synthetic_generator_graphs_conform_across_seeds() {
    for seed in 0..6u64 {
        let graph = synthetic::generate(&SyntheticConfig::with_nodes(80, seed));
        let csr = CsrGraph::from_graph(&graph);
        assert_structurally_equal(&format!("synthetic-{seed}"), &graph, &csr);
    }
}
