//! Service conformance suite: N **concurrent** sessions over one shared
//! [`EngineCore`] must produce exactly the same per-session transcripts as N
//! **sequential** bare sessions — across every [`EvalMode`] and several
//! corpora — and the shared bounded cache must never exceed its configured
//! capacities under a multi-session stress load.
//!
//! This is the contract that makes the multi-session service safe to deploy:
//! per-session state (examples, coverage, pruning, statistics) is fully
//! isolated, the shared cache/index only memoize deterministic answers, and
//! LRU eviction under memory pressure changes cost but never content.

use gps_core::prelude::*;
use gps_core::service::GpsService;
use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
use gps_datasets::scale_free::{self, ScaleFreeConfig};
use gps_datasets::transport::{self, TransportConfig};
use gps_interactive::session::InteractionRecord;

/// Everything observable about a finished session, in comparable form.
#[derive(Debug, PartialEq)]
struct SessionFingerprint {
    transcript: Vec<InteractionRecord>,
    learned: Option<(String, Vec<NodeId>)>,
    halt: HaltReason,
    examples: ExampleSet,
    interactions: usize,
    zooms: usize,
    path_validations: usize,
    pruned_after_interaction: Vec<usize>,
}

fn fingerprint(
    labels: &gps_graph::LabelInterner,
    outcome: &gps_interactive::session::SessionOutcome,
) -> SessionFingerprint {
    SessionFingerprint {
        transcript: outcome.transcript.clone(),
        learned: outcome.learned.as_ref().map(|l| {
            (
                gps_automata::printer::print(&l.regex, labels),
                l.answer.nodes(),
            )
        }),
        halt: outcome.halt_reason,
        examples: outcome.examples.clone(),
        interactions: outcome.stats.interactions,
        zooms: outcome.stats.zooms,
        path_validations: outcome.stats.path_validations,
        pruned_after_interaction: outcome.stats.pruned_after_interaction.clone(),
    }
}

/// The corpora: (name, graph, the goal queries of the simulated users).
fn corpus() -> Vec<(String, Graph, Vec<String>)> {
    let mut graphs = Vec::new();
    graphs.push((
        "figure1".to_string(),
        figure1_graph().0,
        vec![
            MOTIVATING_QUERY.to_string(),
            "cinema".to_string(),
            "restaurant".to_string(),
            MOTIVATING_QUERY.to_string(),
            "bus.tram*.cinema".to_string(),
            "cinema".to_string(),
        ],
    ));
    graphs.push((
        "transport".to_string(),
        transport::generate(&TransportConfig::with_neighborhoods(25, 7)).graph,
        vec![
            "(tram+bus)*.cinema".to_string(),
            "restaurant".to_string(),
            "bus*.cinema".to_string(),
            "(tram+bus)*.cinema".to_string(),
        ],
    ));
    let sf = scale_free::generate(&ScaleFreeConfig {
        nodes: 120,
        seed: 11,
        ..ScaleFreeConfig::default()
    });
    let name = |i: u32| sf.labels().name(LabelId::new(i)).unwrap().to_string();
    let goals = vec![
        format!("({}+{})*.{}", name(0), name(1), name(2)),
        format!("{}.{}*.{}", name(2), name(0), name(1)),
        format!("({}+{})*.{}", name(0), name(1), name(2)),
        name(2),
    ];
    graphs.push(("scale-free".to_string(), sf, goals));
    graphs
}

fn session_config() -> SessionConfig {
    SessionConfig {
        halt: HaltConfig {
            max_interactions: 40,
            stop_on_goal: true,
        },
        ..SessionConfig::default()
    }
}

/// The sequential reference: one bare session per goal, run one after the
/// other, each with its own private naive evaluation stack on the adjacency
/// backend — the single-user shape of the original system.
fn sequential_reference(graph: &Graph, goals: &[String]) -> Vec<SessionFingerprint> {
    goals
        .iter()
        .map(|goal| {
            let goal = PathQuery::parse(goal, graph.labels()).unwrap();
            let mut user = SimulatedUser::new(goal, graph);
            let mut session = Session::new(graph, session_config());
            let outcome = session.run(&mut InformativePathsStrategy::default(), &mut user);
            fingerprint(graph.labels(), &outcome)
        })
        .collect()
}

fn service_for(graph: &Graph, mode: EvalMode) -> GpsService {
    let core = Engine::builder(graph.clone())
        .eval_mode(mode)
        .session_config(session_config())
        .build_core();
    GpsService::new(core)
}

#[test]
fn concurrent_sessions_match_sequential_bare_sessions() {
    for (name, graph, goals) in corpus() {
        let reference = sequential_reference(&graph, &goals);
        assert!(
            reference.iter().all(|f| f.interactions >= 1),
            "{name}: every reference session must interact"
        );
        for mode in [EvalMode::Naive, EvalMode::Frontier, EvalMode::Parallel] {
            for workers in [1, 4] {
                let service = service_for(&graph, mode);
                let outcomes = service.serve(&goals, workers).unwrap();
                assert_eq!(outcomes.len(), reference.len());
                for (i, (outcome, expected)) in outcomes.iter().zip(&reference).enumerate() {
                    let candidate = fingerprint(graph.labels(), outcome);
                    assert_eq!(
                        candidate, *expected,
                        "{name}: session {i} diverged ({mode:?}, {workers} workers)"
                    );
                }
                let stats = service.stats();
                assert_eq!(stats.sessions_closed, goals.len() as u64, "{name} {mode:?}");
                assert_eq!(stats.active_sessions, 0, "{name} {mode:?}");
                let total: usize = reference.iter().map(|f| f.interactions).sum();
                assert_eq!(stats.interactions, total as u64, "{name} {mode:?}");
            }
        }
    }
}

#[test]
fn interleaved_stepping_matches_batch_runs() {
    // Drive several sessions through the manager round-robin — one step per
    // session per round, maximally interleaved through the shared cache —
    // and compare against the sequential bare reference.
    let (graph, _) = figure1_graph();
    let goals = vec![
        MOTIVATING_QUERY.to_string(),
        "cinema".to_string(),
        "restaurant".to_string(),
    ];
    let reference = sequential_reference(&graph, &goals);
    let service = service_for(&graph, EvalMode::Frontier);
    let manager = service.manager();
    let ids: Vec<_> = goals.iter().map(|g| manager.open(g).unwrap()).collect();
    let mut done = vec![false; ids.len()];
    while !done.iter().all(|&d| d) {
        for (i, &id) in ids.iter().enumerate() {
            if !done[i] {
                if let gps_core::SessionStatus::Halted(_) = manager.step(id).unwrap() {
                    done[i] = true;
                }
            }
        }
    }
    for (i, (&id, expected)) in ids.iter().zip(&reference).enumerate() {
        let outcome = manager.close(id).unwrap();
        assert_eq!(
            fingerprint(graph.labels(), &outcome),
            *expected,
            "interleaved session {i} diverged"
        );
    }
}

#[test]
fn bounded_cache_never_exceeds_capacity_under_stress() {
    // A deliberately tiny cache: 4 query answers, 2 bounded-word snapshots.
    // 24 concurrent sessions with rotating goals thrash both maps; the caps
    // must hold, evictions must be observed, and — the crucial part — the
    // transcripts must still be byte-identical to the unbounded run.
    let sf = scale_free::generate(&ScaleFreeConfig {
        nodes: 120,
        seed: 11,
        ..ScaleFreeConfig::default()
    });
    let name = |i: u32| sf.labels().name(LabelId::new(i)).unwrap().to_string();
    let distinct = [
        format!("({}+{})*.{}", name(0), name(1), name(2)),
        format!("{}.{}*.{}", name(2), name(0), name(1)),
        name(2),
        format!("{}*.{}", name(1), name(2)),
    ];
    let goals: Vec<String> = (0..24)
        .map(|i| distinct[i % distinct.len()].clone())
        .collect();

    let unbounded = service_for(&sf, EvalMode::Frontier);
    let expected: Vec<_> = unbounded
        .serve(&goals, 4)
        .unwrap()
        .iter()
        .map(|o| fingerprint(sf.labels(), o))
        .collect();

    let core = Engine::builder(sf.clone())
        .eval_mode(EvalMode::Frontier)
        .session_config(session_config())
        .cache_capacity(4)
        .words_capacity(2)
        .build_core();
    let cache = core.eval_handle();
    let service = GpsService::new(core);
    assert_eq!(service.core().eval_cache().capacity(), 4);
    assert_eq!(service.core().eval_cache().words_capacity(), 2);

    // Interleave serving with capacity probes from a sibling thread, so the
    // bound is observed *while* workers are hammering the cache.
    let stop = std::sync::atomic::AtomicBool::new(false);
    let violations = std::sync::atomic::AtomicUsize::new(0);
    let outcomes = std::thread::scope(|scope| {
        let probe = scope.spawn(|| {
            while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                if cache.cache().len() > 4 || cache.cache().words_len() > 2 {
                    violations.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                }
                std::thread::yield_now();
            }
        });
        let outcomes = service.serve(&goals, 4).unwrap();
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        probe.join().unwrap();
        outcomes
    });
    assert_eq!(
        violations.load(std::sync::atomic::Ordering::Relaxed),
        0,
        "the bounded cache exceeded its configured capacity mid-flight"
    );

    let core = service.core();
    let cache = core.eval_cache();
    assert!(cache.len() <= 4, "answers: {}", cache.len());
    assert!(
        cache.words_len() <= 2,
        "word snapshots: {}",
        cache.words_len()
    );
    assert!(
        cache.evictions() > 0,
        "the stress load must actually overflow the answer cache"
    );
    for (i, (outcome, expected)) in outcomes.iter().zip(&expected).enumerate() {
        assert_eq!(
            fingerprint(sf.labels(), outcome),
            *expected,
            "session {i}: eviction changed observable behavior"
        );
    }
}

#[test]
fn one_core_shares_snapshot_index_and_cache_across_sessions() {
    let (graph, _) = figure1_graph();
    let core = Engine::builder(graph)
        .eval_mode(EvalMode::Frontier)
        .build_core();
    // Cloning the core is cheap sharing, not duplication.
    let clone = core.clone();
    assert!(std::sync::Arc::ptr_eq(
        &core.shared_snapshot(),
        &clone.shared_snapshot()
    ));
    let index = core.shared_index().expect("frontier mode has an index");
    assert!(std::sync::Arc::ptr_eq(
        &index,
        &clone.shared_index().unwrap()
    ));
    assert!(core.index_memory_bytes() > 0);

    // Sessions of both clones evaluate through one cache: the second
    // session's goal evaluation is a hit, not a recomputation.
    let service_a = GpsService::new(core);
    let service_b = GpsService::new(clone);
    service_a.serve_one(MOTIVATING_QUERY).unwrap();
    let misses_before = service_a.core().eval_cache().stats().1;
    service_b.serve_one(MOTIVATING_QUERY).unwrap();
    assert_eq!(
        service_b.core().eval_cache().stats().1,
        misses_before,
        "replaying the same goal through a core clone adds no cache misses"
    );
}
