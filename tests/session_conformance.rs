//! Session conformance suite: interactive sessions must be
//! **transcript-identical** regardless of which execution engine backs them.
//!
//! A session's observable behavior is its transcript — the sequence of
//! proposed nodes, zoom counts, labels and validated words — plus the
//! learned query, the collected examples, the halt reason and the pruning
//! trajectory.  This suite replays the same specification task through
//!
//! * the reference path: `Session::new` + `SimulatedUser::new` on the
//!   mutable adjacency backend (private naive evaluation stack), and
//! * the engine path under **every** [`EvalMode`] on the CSR backend, with
//!   the session, user, learner and pruning all sharing the engine's
//!   evaluation stack via [`EvalHandle`],
//!
//! and asserts byte-identical outcomes across the figure1, transport and
//! scale-free corpora, with and without path validation.

use gps_core::prelude::*;
use gps_datasets::figure1::{figure1_graph, MOTIVATING_QUERY};
use gps_datasets::scale_free::{self, ScaleFreeConfig};
use gps_datasets::transport::{self, TransportConfig};
use gps_interactive::session::InteractionRecord;

/// Everything observable about a finished session, in comparable form.
#[derive(Debug, PartialEq)]
struct SessionFingerprint {
    transcript: Vec<InteractionRecord>,
    learned: Option<(String, Vec<NodeId>)>,
    halt: HaltReason,
    examples: ExampleSet,
    interactions: usize,
    zooms: usize,
    positive_labels: usize,
    negative_labels: usize,
    path_validations: usize,
    path_corrections: usize,
    pruned_after_interaction: Vec<usize>,
}

fn fingerprint(
    graph_labels: &gps_graph::LabelInterner,
    outcome: &SessionOutcome,
) -> SessionFingerprint {
    SessionFingerprint {
        transcript: outcome.transcript.clone(),
        learned: outcome.learned.as_ref().map(|l| {
            (
                gps_automata::printer::print(&l.regex, graph_labels),
                l.answer.nodes(),
            )
        }),
        halt: outcome.halt_reason,
        examples: outcome.examples.clone(),
        interactions: outcome.stats.interactions,
        zooms: outcome.stats.zooms,
        positive_labels: outcome.stats.positive_labels,
        negative_labels: outcome.stats.negative_labels,
        path_validations: outcome.stats.path_validations,
        path_corrections: outcome.stats.path_corrections,
        pruned_after_interaction: outcome.stats.pruned_after_interaction.clone(),
    }
}

/// The corpora: (name, graph, goal query syntax).
fn corpus() -> Vec<(String, Graph, String)> {
    let mut graphs = Vec::new();
    graphs.push((
        "figure1".to_string(),
        figure1_graph().0,
        MOTIVATING_QUERY.to_string(),
    ));
    graphs.push((
        "transport".to_string(),
        transport::generate(&TransportConfig::with_neighborhoods(25, 7)).graph,
        "(tram+bus)*.cinema".to_string(),
    ));
    let sf = scale_free::generate(&ScaleFreeConfig {
        nodes: 120,
        seed: 11,
        ..ScaleFreeConfig::default()
    });
    let name = |i: u32| sf.labels().name(LabelId::new(i)).unwrap().to_string();
    let sf_query = format!("({}+{})*.{}", name(0), name(1), name(2));
    graphs.push(("scale-free".to_string(), sf, sf_query));
    graphs
}

fn config(with_validation: bool) -> SessionConfig {
    SessionConfig {
        with_path_validation: with_validation,
        halt: HaltConfig {
            max_interactions: 40,
            stop_on_goal: true,
        },
        ..SessionConfig::default()
    }
}

/// The reference run: bare `Session::new` on the adjacency backend.
fn run_reference(graph: &Graph, syntax: &str, config: SessionConfig) -> SessionOutcome {
    let goal = PathQuery::parse(syntax, graph.labels()).unwrap();
    let mut user = SimulatedUser::new(goal.clone(), graph);
    let mut session = Session::new(graph, config);
    session.run(&mut InformativePathsStrategy::default(), &mut user)
}

/// The engine run: CSR backend, shared evaluation stack, chosen eval mode.
fn run_engine(
    graph: &Graph,
    syntax: &str,
    config: SessionConfig,
    mode: EvalMode,
) -> SessionOutcome {
    let engine = Engine::builder(graph.clone())
        .eval_mode(mode)
        .session_config(config)
        .build_csr();
    let goal = engine.parse_query(syntax).unwrap();
    let mut user = SimulatedUser::with_exec(goal, engine.eval_handle());
    let mut session = engine.new_session();
    session.run(&mut InformativePathsStrategy::default(), &mut user)
}

#[test]
fn session_transcripts_identical_across_eval_modes_and_backends() {
    for (name, graph, syntax) in corpus() {
        for with_validation in [true, false] {
            let reference = fingerprint(
                graph.labels(),
                &run_reference(&graph, &syntax, config(with_validation)),
            );
            assert!(
                reference.interactions >= 1,
                "{name}: the reference session must interact"
            );
            for mode in [EvalMode::Naive, EvalMode::Frontier, EvalMode::Parallel] {
                let outcome = run_engine(&graph, &syntax, config(with_validation), mode);
                let candidate = fingerprint(graph.labels(), &outcome);
                assert_eq!(
                    candidate, reference,
                    "{name} (validation={with_validation}): {mode:?} session diverged"
                );
            }
        }
    }
}

#[test]
fn frontier_sessions_share_the_engine_cache() {
    let (graph, _) = figure1_graph();
    let engine = Engine::builder(graph)
        .eval_mode(EvalMode::Frontier)
        .build_csr();
    assert!(engine.eval_cache().is_empty());
    let report = engine
        .interactive_with_validation(MOTIVATING_QUERY, 0)
        .unwrap();
    assert!(report.goal_reached);
    let (hits, misses) = engine.eval_cache().stats();
    assert!(misses >= 1, "goal + hypotheses evaluate through the cache");
    assert!(
        hits >= 1,
        "repeat hypothesis/goal evaluations hit the shared cache (hits={hits}, misses={misses})"
    );
    // A second identical scenario is served almost entirely from the cache.
    let misses_before = engine.eval_cache().stats().1;
    let report2 = engine
        .interactive_with_validation(MOTIVATING_QUERY, 0)
        .unwrap();
    assert_eq!(report2.interactions, report.interactions);
    assert_eq!(
        engine.eval_cache().stats().1,
        misses_before,
        "replaying the same session adds no cache misses"
    );
}

#[test]
fn engine_sessions_match_scenario_reports_across_modes() {
    // The scenario path (engine.interactive_with_validation) and the manual
    // session path must agree on interactions for every mode — both run on
    // the same shared stack.
    let (graph, _) = figure1_graph();
    let reference = run_engine(
        &graph,
        MOTIVATING_QUERY,
        SessionConfig::default(),
        EvalMode::Naive,
    );
    for mode in [EvalMode::Naive, EvalMode::Frontier, EvalMode::Parallel] {
        let engine = Engine::builder(graph.clone()).eval_mode(mode).build_csr();
        let report = engine
            .interactive_with_validation(MOTIVATING_QUERY, 0)
            .unwrap();
        assert_eq!(
            report.interactions, reference.stats.interactions,
            "{mode:?}"
        );
        assert!(report.goal_reached, "{mode:?}");
    }
}
